"""Frozen-fixture equivalence gate for the solver kernels (phases 9-12).

``tests/fixtures/solver_equivalence.json`` holds the honest solver
phase-output digests computed once by the interpreter on the pinned
probe's assembled (diagonal-shifted) matrix.  Every rung and every
dependency-legal pass schedule, executed by *either* backend, must
reproduce those digests byte for byte -- the solver twin of the
``backend_equivalence.json`` gate that lets ``"numpy"`` be the default
backend.
"""

import json
from pathlib import Path

import pytest

from repro.compiler.transforms import legal_schedules
from repro.validation.digests import solver_phase_digests
from repro.validation.probe import Probe

FIXTURE = Path(__file__).parent.parent / "fixtures" / "solver_equivalence.json"

RUNGS = ("scalar", "vanilla", "vec2", "ivec2", "vec1")


@pytest.fixture(scope="module")
def frozen():
    return json.loads(FIXTURE.read_text())


def _digests(frozen):
    return {int(p): h for p, h in frozen["digests"].items()}


def test_fixture_covers_the_solver_matrix(frozen):
    assert frozen["generator_backend"] == "interpreter"
    assert tuple(frozen["rungs"]) == RUNGS
    assert ([tuple(s) for s in frozen["schedules"]]
            == list(legal_schedules()))
    assert sorted(_digests(frozen)) == [9, 10, 11, 12]
    probe = frozen["probe"]
    assert (tuple(probe["mesh_dims"]), probe["vector_size"],
            probe["field_seed"]) == (Probe().mesh_dims,
                                     Probe().vector_size,
                                     Probe().field_seed)


@pytest.mark.parametrize("backend", ["interpreter", "numpy"])
@pytest.mark.parametrize("opt", RUNGS)
def test_solver_rung_digests_match_frozen(frozen, opt, backend):
    got = solver_phase_digests(Probe(opt=opt, backend=backend))
    assert got == _digests(frozen)


@pytest.mark.parametrize("sched", legal_schedules(),
                         ids=lambda s: "+".join(s) or "baseline")
def test_solver_schedule_digests_match_frozen(frozen, sched):
    got = solver_phase_digests(Probe(opt="vanilla", passes=sched,
                                     backend="numpy"))
    assert got == _digests(frozen)
