"""Seeded differential fuzzing of the IR-lowered solver kernels.

Random field seeds (which drive both the assembled matrix and the
seeded solver vectors) run the SpMV / dot / axpy / Jacobi-apply kernels
through the interpreter oracle and the NumPy lowering across every rung
and every dependency-legal pass schedule; ``solver_phase_digests`` must
agree bit for bit.  A second layer checks the kernels against the plain
``cfd.csr`` / ``cfd.solver`` NumPy reference (values, not bytes: kernel
dot products accumulate in a different order than ``np.dot``).
"""

import random

import numpy as np
import pytest

from repro.backends import get_backend
from repro.cfd.csr import spmv
from repro.cfd.solver_phases import (
    SOLVER_PHASE_OUTPUTS,
    SOLVER_REF_PHASES,
    seeded_solver_inputs,
)
from repro.compiler.transforms import legal_schedules
from repro.validation.digests import solver_phase_digests
from repro.validation.probe import Probe

RUNGS = ("scalar", "vanilla", "vec2", "ivec2", "vec1")

_rng = random.Random(0x50F7C0DE)
SEEDS = sorted(_rng.sample(range(1, 10_000), 3))


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_solver_rungs_match_interpreter(seed):
    oracle = solver_phase_digests(
        Probe(opt="vanilla", field_seed=seed, backend="interpreter"))
    for rung in RUNGS:
        got = solver_phase_digests(
            Probe(opt=rung, field_seed=seed, backend="numpy"))
        assert got == oracle, (rung, seed)


@pytest.mark.parametrize("seed", SEEDS[:1])
def test_fuzz_all_legal_schedules_match_interpreter(seed):
    oracle = solver_phase_digests(
        Probe(opt="vanilla", field_seed=seed, backend="interpreter"))
    for sched in legal_schedules():
        got = solver_phase_digests(
            Probe(opt="vanilla", passes=sched, field_seed=seed,
                  backend="numpy"))
        assert got == oracle, (sched, seed)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("backend", ["interpreter", "numpy"])
def test_fuzz_kernels_match_numpy_reference(seed, backend):
    """Executed kernel outputs vs the SOLVER_REF_PHASES NumPy semantics
    and, for SpMV, the original ``cfd.csr`` path."""
    probe = Probe(field_seed=seed, backend=backend)
    app = probe.build_app()
    workload, _ = app.build_solver()
    ctx = workload.context
    be = get_backend(backend)
    data = seeded_solver_inputs(ctx, seed)
    ref = {name: arr.copy() for name, arr in data.items()}
    kernels = sorted(workload.kernels, key=lambda k: k.phase)
    for chunk in ctx.chunks():
        inst = ctx.instance_for_chunk(chunk, globals_data=data)
        executor = be.executor(inst, ctx.params)
        rows = chunk.elements
        for kern in kernels:
            executor.run(kern)
            SOLVER_REF_PHASES[kern.phase](ref, ctx.params, rows)
            for name in SOLVER_PHASE_OUTPUTS[kern.phase]:
                np.testing.assert_allclose(
                    np.asarray(inst.data(name)), ref[name],
                    rtol=probe.rtol, atol=probe.atol,
                    err_msg=f"{kern.name}:{name}")
    n = ctx.sizes.nrow
    np.testing.assert_allclose(
        ref["yout"][:n], spmv(workload.pattern, workload.amatr,
                              data["xvec"][:n]),
        rtol=1e-9, atol=1e-12)


@pytest.mark.parametrize("seed", SEEDS[:1])
def test_fuzz_ir_solve_tracks_reference(seed):
    """End to end: the IR-orchestrated BiCGSTAB on a fuzzed system
    converges exactly like the ``cfd.solver`` NumPy reference."""
    app = Probe(field_seed=seed).build_app()
    ir = app.solve("bicgstab")
    ref = app.reference_solve("bicgstab")
    assert (ir.converged, ir.iterations) == (ref.converged, ref.iterations)
    np.testing.assert_allclose(ir.x, ref.x, rtol=1e-6, atol=1e-9)
