"""Seeded differential fuzzing: interpreter vs numpy digest equality.

Random field seeds drive randomly-initialized fields through both
backends across every rung and every dependency-legal pass schedule;
``phase_output_digests`` must agree bit for bit.  The honest digest is
also rung-invariant, so one interpreter run per seed anchors the whole
matrix.
"""

import random

import pytest

from repro.compiler.transforms import legal_schedules
from repro.validation.digests import phase_output_digests
from repro.validation.probe import Probe

RUNGS = ("scalar", "vanilla", "vec2", "ivec2", "vec1")

_rng = random.Random(0xC0DE5EED)
SEEDS = sorted(_rng.sample(range(1, 10_000), 3))


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_rungs_match_interpreter(seed):
    oracle = phase_output_digests(
        Probe(opt="vanilla", field_seed=seed, backend="interpreter"))
    for rung in RUNGS:
        got = phase_output_digests(
            Probe(opt=rung, field_seed=seed, backend="numpy"))
        assert got == oracle, (rung, seed)


@pytest.mark.parametrize("seed", SEEDS[:1])
def test_fuzz_all_legal_schedules_match_interpreter(seed):
    oracle = phase_output_digests(
        Probe(opt="vanilla", field_seed=seed, backend="interpreter"))
    schedules = legal_schedules()
    assert len(schedules) == 9  # every legal ordering over 3 passes
    for sched in schedules:
        got = phase_output_digests(
            Probe(opt="vanilla", passes=sched, field_seed=seed,
                  backend="numpy"))
        assert got == oracle, (sched, seed)
