"""Tests for the per-phase cycle regression gate (repro bench --baseline)."""

import json

import pytest

from repro.obs import gate
from repro.metrics.counters import RunCounters


def _run(cycles_by_phase):
    run = RunCounters()
    for pid, cyc in cycles_by_phase.items():
        run.phase(pid).cycles_total = cyc
    return run


def _payload(phase_cycles, mesh=(4, 4, 4)):
    return {"mesh": list(mesh), "phase_cycles": phase_cycles}


def test_phase_cycles_payload_shape():
    runs = {"b-key": _run({1: 10.0, 6: 99.5}), "a-key": _run({2: 3.0})}
    payload = gate.phase_cycles_payload(runs)
    assert list(payload) == ["a-key", "b-key"]  # sorted, JSON-stable
    assert payload["b-key"] == {"1": 10.0, "6": 99.5}


def test_identical_reports_pass():
    pc = {"k": {"1": 100.0, "6": 2000.0}}
    assert gate.compare_phase_cycles(pc, pc) == []


def test_drift_within_threshold_passes():
    cur = {"k": {"6": 1090.0}}
    base = {"k": {"6": 1000.0}}
    assert gate.compare_phase_cycles(cur, base, threshold=0.10) == []


def test_injected_regression_breaches():
    cur = {"k": {"1": 100.0, "6": 1150.0}}
    base = {"k": {"1": 100.0, "6": 1000.0}}
    (b,) = gate.compare_phase_cycles(cur, base, threshold=0.10)
    assert b.phase == 6 and b.ratio == pytest.approx(1.15)
    assert "regression" in b.describe()


def test_speedup_past_threshold_also_flags():
    # the gate is two-sided: an unexplained speed-up is a model change too.
    cur = {"k": {"6": 800.0}}
    base = {"k": {"6": 1000.0}}
    (b,) = gate.compare_phase_cycles(cur, base)
    assert "speed-up" in b.describe()


def test_phase_appearing_or_vanishing_is_a_breach():
    cur = {"k": {"1": 100.0, "9": 5.0}}
    base = {"k": {"1": 100.0, "2": 50.0}}
    breaches = gate.compare_phase_cycles(cur, base)
    assert {b.phase for b in breaches} == {2, 9}


def test_only_common_keys_compared():
    cur = {"k1": {"1": 100.0}}
    base = {"k1": {"1": 100.0}, "k2": {"1": 999.0}}
    assert gate.compare_phase_cycles(cur, base) == []


def test_check_report_happy_path(tmp_path):
    pc = {"k": {"1": 100.0}}
    path = tmp_path / "base.json"
    path.write_text(json.dumps(_payload(pc)))
    assert gate.check_report(_payload(pc), path) == []


def test_check_report_missing_baseline(tmp_path):
    with pytest.raises(ValueError, match="does not exist"):
        gate.check_report(_payload({}), tmp_path / "nope.json")


def test_check_report_malformed_baseline(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(ValueError, match="not valid JSON"):
        gate.check_report(_payload({}), path)


def test_check_report_without_phase_cycles_section(tmp_path):
    path = tmp_path / "old.json"
    path.write_text(json.dumps({"mesh": [4, 4, 4], "serial_s": 1.0}))
    with pytest.raises(ValueError, match="phase_cycles"):
        gate.check_report(_payload({}), path)


def test_check_report_mesh_mismatch(tmp_path):
    pc = {"k": {"1": 1.0}}
    path = tmp_path / "base.json"
    path.write_text(json.dumps(_payload(pc, mesh=(8, 8, 15))))
    with pytest.raises(ValueError, match="mesh"):
        gate.check_report(_payload(pc), path)


def test_check_report_no_common_keys(tmp_path):
    path = tmp_path / "base.json"
    path.write_text(json.dumps(_payload({"other": {"1": 1.0}})))
    with pytest.raises(ValueError, match="no run keys"):
        gate.check_report(_payload({"mine": {"1": 1.0}}), path)


def test_committed_baseline_is_current(repo_root=None):
    """The checked-in BENCH_report.json must carry the gate section."""
    from pathlib import Path

    path = Path(__file__).resolve().parents[2] / "BENCH_report.json"
    doc = json.loads(path.read_text())
    assert doc["mesh"] == [4, 4, 4] and doc["profile"] == "smoke"
    assert doc["phase_cycles"]
    # the smoke plan's -solve config pins the solver phases 9-12 too.
    assert any(key.endswith("-solve") for key in doc["phase_cycles"])
    for key, phases in doc["phase_cycles"].items():
        last = 13 if key.endswith("-solve") else 9
        assert set(phases) == {str(p) for p in range(1, last)}, key
