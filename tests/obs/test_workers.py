"""Tests for cross-process trace capture: TracedWorker + merge."""

import json
import os

from repro import obs
from repro.obs import chrome
from repro.obs.tracer import Tracer
from repro.obs.workers import (
    TRACE_DIR_ENV,
    WORKER_PID_BASE,
    TracedWorker,
    merge_worker_traces,
    trace_path,
)
from repro.experiments.config import RunConfig
from repro.experiments.executor import ExecutionPlan, execute_plan, simulate_to_dict

TINY = (4, 4, 4)


def _cfg(vs=16):
    return RunConfig(opt="vanilla", vector_size=vs, mesh_dims=TINY)


def test_traced_worker_transparent_without_env(monkeypatch):
    monkeypatch.delenv(TRACE_DIR_ENV, raising=False)
    cfg = _cfg()
    assert TracedWorker(simulate_to_dict)(cfg) == simulate_to_dict(cfg)


def test_traced_worker_writes_trace_file(tmp_path, monkeypatch):
    monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
    cfg = _cfg()
    TracedWorker(simulate_to_dict)(cfg)
    path = trace_path(tmp_path, cfg.key())
    assert path.exists()
    events = chrome.load(path)
    # the worker wraps the run in a wall span and captures SIM phase spans.
    assert any(e.get("name", "").startswith("run ") for e in events)
    assert chrome.phase_span_names(events)


def test_merge_remaps_worker_pids(tmp_path):
    for i, key in enumerate(["a", "b"]):
        t = Tracer()
        t.span_at(f"phase{i}", cat="phase", t0=0, t1=10, phase=i + 1)
        chrome.dump(t, trace_path(tmp_path, key))
    tracer = Tracer()
    merged = merge_worker_traces(tracer, tmp_path)
    assert merged == 2
    pids = {e["pid"] for e in tracer.raw_events}
    assert pids == {WORKER_PID_BASE, WORKER_PID_BASE + 1}


def test_merge_skips_unreadable_files(tmp_path):
    (tmp_path / "worker-0-bad.json").write_text("{truncated")
    tracer = Tracer()
    assert merge_worker_traces(tracer, tmp_path) == 0
    assert tracer.raw_events == []


def test_execute_plan_merges_worker_traces(tmp_path):
    plan = ExecutionPlan.from_configs([_cfg(16), _cfg(64), _cfg(128)])
    tracer = Tracer()
    with obs.use(tracer):
        res = execute_plan(plan, cache_dir=tmp_path / "c", jobs=2)
    assert not res.failed
    assert tracer.raw_events, "worker traces were not merged"
    assert all(e["pid"] >= WORKER_PID_BASE for e in tracer.raw_events)
    # executor progress landed as points/counters on the coordinator.
    kinds = {dict(p.args).get("kind") for p in tracer.points} | \
        {p.name for p in tracer.points}
    assert "sweep start" in kinds and "sweep end" in kinds
    assert any(c.name == "queue depth" for c in tracer.counters)
    # the trace dir is temporary: nothing leaks into the cache dir or env.
    assert TRACE_DIR_ENV not in os.environ
    assert all("worker-" not in p.name
               for p in (tmp_path / "c").rglob("*.json"))


def test_merged_export_deterministic_across_pid_assignments(tmp_path):
    """Satellite: the Chrome export of a merged multi-process trace is
    identical across two runs that got *different* OS pids — the pid
    remap keys on config-key order, not pool scheduling luck."""
    def run(name, pids):
        d = tmp_path / name
        d.mkdir()
        for pid, key in zip(pids, ["keyA", "keyB", "keyC"]):
            t = Tracer()
            t.span_at(f"phase {key}", cat="phase", t0=0, t1=10, phase=1)
            chrome.dump(t, d / f"worker-{pid}-{key}.json")
        merged = Tracer()
        assert merge_worker_traces(merged, d) == 3
        return chrome.dumps(merged)

    # same three runs, wildly different pid draws (and different
    # pid-sort vs key-sort orders, which raw-filename sorting would mix).
    one = run("one", [3101, 22, 407])
    two = run("two", [9, 8881, 53])
    assert one == two
    pids = sorted({e["pid"] for e in json.loads(one)["traceEvents"]
                   if isinstance(e.get("pid"), int)
                   and e["pid"] >= WORKER_PID_BASE})
    assert pids == [WORKER_PID_BASE, WORKER_PID_BASE + 1,
                    WORKER_PID_BASE + 2]


def test_service_worker_span_merge_is_deterministic(tmp_path):
    """Two identical traced sweeps through the pool path produce the
    same merged service+worker span ordering (pid-remapped, key-sorted)."""
    plan = ExecutionPlan.from_configs([_cfg(16), _cfg(64), _cfg(128)])

    def run(name):
        tracer = Tracer()
        with obs.use(tracer):
            res = execute_plan(plan, cache_dir=tmp_path / name, jobs=2)
        assert not res.failed
        # project onto the schedule-independent shape: which span ran in
        # which remapped process (wall timestamps/durations jitter).
        return [(e["pid"], e["name"]) for e in tracer.raw_events
                if e.get("ph") == "X" and e.get("name", "").startswith("run ")]

    assert run("a") == run("b")


def test_untraced_parallel_payloads_unchanged(tmp_path):
    """With no ambient tracer the pool path is byte-for-byte the seed's."""
    plan = ExecutionPlan.from_configs([_cfg(16), _cfg(64)])
    bare = execute_plan(plan, cache_dir=tmp_path / "bare", jobs=2)
    with obs.use(Tracer()):
        traced = execute_plan(plan, cache_dir=tmp_path / "traced", jobs=2)
    assert not bare.failed and not traced.failed
    bare_files = {p.name: p.read_bytes()
                  for p in (tmp_path / "bare").rglob("*.json")}
    traced_files = {p.name: p.read_bytes()
                    for p in (tmp_path / "traced").rglob("*.json")}
    assert bare_files == traced_files
