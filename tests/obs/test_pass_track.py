"""Pass-pipeline observability: spans, remark events, chrome track."""

from repro import obs
from repro.cfd.assembly import MiniApp
from repro.cfd.mesh import box_mesh
from repro.obs import chrome


def _traced_build(opt="ivec2"):
    tracer = obs.Tracer()
    with obs.use(tracer):
        MiniApp(box_mesh(3, 2, 2), 8, opt)
    return tracer


def test_pass_spans_stamped_during_compilation():
    tracer = _traced_build()
    spans = [s for s in tracer.spans if s.cat == "pass"]
    # 8 kernels x 2 passes for ivec2.
    assert len(spans) == 16
    assert {s.name for s in spans} == {"pass const-trip-count",
                                       "pass loop-interchange"}
    assert all(s.phase in range(1, 9) for s in spans)


def test_remark_events_carry_the_decision():
    tracer = _traced_build()
    remarks = [p for p in tracer.points if p.cat == "pass"]
    assert len(remarks) == 16
    by_status = {}
    for p in remarks:
        args = dict(p.args)
        by_status.setdefault(args["status"], []).append(args)
    assert any(a["phase"] == 2 for a in by_status["applied"])
    assert len(by_status["applied"]) == 2


def test_no_tracer_no_records():
    tracer = obs.Tracer()
    MiniApp(box_mesh(3, 2, 2), 8, "ivec2")  # built outside any context
    assert not tracer.spans and not tracer.points


def test_chrome_export_has_ordinal_compile_track():
    tracer = _traced_build()
    events = chrome.to_events(tracer)
    comp = [e for e in events if e.get("pid") == chrome.PID_COMPILE]
    spans = [e for e in comp if e.get("ph") == "X"]
    instants = [e for e in comp if e.get("ph") == "i"]
    assert len(spans) == 16 and len(instants) == 16
    # ordinal timestamps: deterministic across hosts and re-runs.
    assert [e["ts"] for e in spans] == list(range(16))
    assert all(e["cat"] == "pass" for e in spans + instants)


def test_chrome_export_deterministic_with_pass_track():
    a = chrome.dumps(_traced_build())
    b = chrome.dumps(_traced_build())
    assert a == b


def test_wall_export_does_not_duplicate_pass_records():
    tracer = _traced_build()
    events = chrome.to_events(tracer, include_wall=True)
    passes = [e for e in events if e.get("cat") == "pass"]
    assert all(e["pid"] == chrome.PID_COMPILE for e in passes)
