"""Tests for the observability spine: contextvar scoping, span/event
recording, the zero-cost disabled path, and the legacy hook interface."""

import pytest

from repro import obs
from repro.obs.tracer import NOOP_SPAN, NULL_TRACER, SIM, WALL, Tracer


# -- scoping -----------------------------------------------------------------


def test_default_ambient_tracer_is_disabled():
    assert obs.active() is None
    assert obs.current() is NULL_TRACER
    assert not obs.current().enabled


def test_use_installs_and_restores():
    t = Tracer()
    assert obs.active() is None
    with obs.use(t):
        assert obs.active() is t
        assert obs.current() is t
    assert obs.active() is None


def test_use_nests():
    outer, inner = Tracer(), Tracer()
    with obs.use(outer):
        with obs.use(inner):
            assert obs.active() is inner
        assert obs.active() is outer


def test_use_restores_on_exception():
    t = Tracer()
    with pytest.raises(RuntimeError):
        with obs.use(t):
            raise RuntimeError("boom")
    assert obs.active() is None


# -- the disabled path -------------------------------------------------------


def test_disabled_tracer_records_nothing():
    t = Tracer(enabled=False)
    with t.span("s"):
        pass
    t.span_at("p", cat="phase", t0=0.0, t1=10.0, phase=1)
    t.event("e")
    t.counter("c", 1.0)
    t.instr("vle", 64, 64)
    t.ingest([{"ph": "i"}])
    t.on_block(1, "b", "scalar", 0.0, 10.0)
    t.on_vector_instrs(1, 0.0, [("vle", 64, 2)])
    assert not t.spans and not t.points and not t.counters
    assert not t.instrs and not t.raw_events
    assert not t.blocks and not t.vector_instrs


def test_ambient_span_is_shared_noop_when_disabled():
    # zero-cost check: no per-call allocation on the disabled path.
    assert obs.span("x") is NOOP_SPAN
    assert obs.span("y") is NOOP_SPAN
    with obs.span("z"):
        pass  # usable as a context manager


def test_ambient_event_and_counter_noop_when_disabled():
    obs.event("nothing")
    obs.counter("nothing", 1.0)
    assert not NULL_TRACER.points and not NULL_TRACER.counters


# -- recording ---------------------------------------------------------------


def test_span_records_wall_domain():
    t = Tracer()
    with obs.use(t):
        with obs.span("work", cat="run", answer=42):
            pass
    (s,) = t.spans
    assert s.name == "work" and s.cat == "run" and s.domain == WALL
    assert s.t1 >= s.t0 and s.dur >= 0
    assert dict(s.args) == {"answer": 42}


def test_span_at_records_sim_domain():
    t = Tracer()
    t.span_at("phase6", cat="phase", t0=100.0, t1=250.0, phase=6)
    (s,) = t.spans
    assert s.domain == SIM and s.phase == 6 and s.dur == 150.0
    assert t.phase_spans() == [s]


def test_event_and_counter():
    t = Tracer()
    t.event("done", cat="executor", key="k")
    t.counter("queue depth", 3)
    (p,) = t.points
    assert p.name == "done" and dict(p.args) == {"key": "k"}
    (c,) = t.counters
    assert c.name == "queue depth" and c.value == 3.0


def test_instr_stream_and_occupancy():
    t = Tracer()
    t.instr("vfadd", 40, 64)
    (i,) = t.instrs
    assert i.occupancy == pytest.approx(40 / 64)


def test_vl_histogram_merges_batches_and_instrs():
    t = Tracer()
    t.on_vector_instrs(6, 0.0, [("vle", 240, 10), ("vsetvl", 240, 10)])
    t.instr("vfadd", 240, 256)
    t.instr("vsetvl", 240, 256)  # vsetvl excluded from the histogram
    assert t.vl_histogram() == {240: 11}
    assert t.vl_histogram(phase=6) == {240: 10}


def test_legacy_hooks_feed_block_views():
    t = Tracer()
    t.on_block(1, "b1", "scalar", 0.0, 10.0)
    t.on_block(2, "b2", "vector", 10.0, 30.0)
    assert t.phases() == [1, 2]
    assert t.phase_cycles(2) == 30.0
    assert t.total_cycles() == 40.0


def test_clear_resets_everything():
    t = Tracer()
    t.on_block(1, "b", "scalar", 0.0, 10.0)
    t.span_at("p", cat="phase", t0=0.0, t1=1.0, phase=1)
    t.event("e")
    t.counter("c", 1)
    t.instr("vle", 8, 8)
    t.ingest([{"ph": "i"}])
    t.clear()
    assert not (t.blocks or t.spans or t.points or t.counters
                or t.instrs or t.raw_events)


# -- integration: instrumented layers pick the tracer up ambiently -----------


def test_machine_stamps_phase_spans_ambiently():
    from repro.cfd.assembly import MiniApp
    from repro.cfd.mesh import box_mesh
    from repro.machine.machines import RISCV_VEC

    app = MiniApp(box_mesh(4, 4, 4), vector_size=64, opt="vec1")
    t = Tracer()
    with obs.use(t):
        run = app.run_timed(RISCV_VEC)
    spans = t.phase_spans()
    assert sorted({s.phase for s in spans}) == list(range(1, 9))
    # SIM spans agree with the hardware counters, phase by phase.
    by_phase = {}
    for s in spans:
        by_phase[s.phase] = by_phase.get(s.phase, 0.0) + s.dur
    for pid, pc in run.phases.items():
        assert by_phase[pid] == pytest.approx(pc.cycles_total, rel=1e-9)
    # the run_timed wall span from the mini-app driver is present too.
    assert any(s.cat == "run" for s in t.spans)


def test_emulator_emits_instr_events():
    from repro.isa.emulator import VectorEmulator, vle, vop, vsetvl

    t = Tracer()
    with obs.use(t):
        emu = VectorEmulator(vl_max=8, mem_size=64)
        emu.step(vsetvl("vl", 20))
        emu.step(vle(1, 0))
        emu.step(vop("vfadd", 2, 1, 1))
    assert [i.opcode for i in t.instrs] == ["vsetvl", "vle", "vfadd"]
    assert all(i.vl == 8 for i in t.instrs)  # granted vl capped at vl_max


def test_interpreter_records_ir_spans():
    from repro.cfd.assembly import MiniApp
    from repro.cfd.mesh import box_mesh

    app = MiniApp(box_mesh(2, 2, 2), vector_size=8, opt="vanilla")
    t = Tracer()
    with obs.use(t):
        app.run_interpreted()
    ir = [s for s in t.spans if s.cat == "ir"]
    assert sorted({s.phase for s in ir}) == list(range(1, 9))


def test_tracing_off_leaves_cycle_counts_identical():
    """Satellite: instrumentation must not perturb the timing model."""
    from repro.cfd.assembly import MiniApp
    from repro.cfd.mesh import box_mesh
    from repro.machine.machines import RISCV_VEC
    from repro.metrics.counters import counters_to_dict

    app = MiniApp(box_mesh(4, 4, 4), vector_size=64, opt="vec1")
    bare = counters_to_dict(app.run_timed(RISCV_VEC))
    with obs.use(Tracer()):
        traced = counters_to_dict(app.run_timed(RISCV_VEC))
    assert bare == traced


def test_tracing_and_metrics_off_is_the_seed_hot_path():
    """Satellite (PR 8): the metrics registry joins the zero-cost
    contract — with both ambient planes disabled the hot assembly path
    produces counters identical to the seed, and enabling both together
    still never perturbs the timing model."""
    from repro.cfd.assembly import MiniApp
    from repro.cfd.mesh import box_mesh
    from repro.machine.machines import RISCV_VEC
    from repro.metrics.counters import counters_to_dict
    from repro.obs import metrics

    assert metrics.active() is None  # the default: disabled
    app = MiniApp(box_mesh(4, 4, 4), vector_size=64, opt="vec1")
    bare = counters_to_dict(app.run_timed(RISCV_VEC))
    with obs.use(Tracer()), metrics.use(metrics.MetricsRegistry()):
        instrumented = counters_to_dict(app.run_timed(RISCV_VEC))
    assert bare == instrumented
