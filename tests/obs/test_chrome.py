"""Tests for the Chrome trace_event exporter."""

import json

import pytest

from repro import obs
from repro.obs import chrome
from repro.obs.tracer import Tracer


@pytest.fixture(scope="module")
def traced():
    from repro.cfd.assembly import MiniApp
    from repro.cfd.mesh import box_mesh
    from repro.machine.machines import RISCV_VEC

    app = MiniApp(box_mesh(4, 4, 4), vector_size=64, opt="vec1")
    tracer = Tracer()
    with obs.use(tracer):
        app.run_timed(RISCV_VEC)
    return tracer


def test_export_covers_all_eight_phases(traced):
    events = chrome.to_events(traced)
    names = set(chrome.phase_span_names(events))
    assert len(names) == 8
    assert {e["args"]["phase"] for e in events
            if e.get("ph") == "X" and e.get("tid") == 1
            and e.get("pid") == chrome.PID_SIM} == set(range(1, 9))


def test_block_spans_on_tid2(traced):
    events = chrome.to_events(traced)
    blocks = [e for e in events if e.get("ph") == "X"
              and e.get("pid") == chrome.PID_SIM and e.get("tid") == 2]
    assert len(blocks) == len(traced.blocks)


def test_granted_vl_counter_track(traced):
    events = chrome.to_events(traced)
    vl = [e for e in events if e.get("ph") == "C"
          and e.get("name") == "granted vl"]
    assert vl and all(e["args"]["vl"] > 0 for e in vl)


def test_dumps_is_deterministic(traced):
    assert chrome.dumps(traced) == chrome.dumps(traced)


def test_wall_clock_excluded_by_default(traced):
    events = chrome.to_events(traced)
    assert all(e.get("pid") != chrome.PID_WALL for e in events)
    # ... so the default export is reproducible across hosts; opting in
    # adds the harness timeline.
    with_wall = chrome.to_events(traced, include_wall=True)
    assert any(e.get("pid") == chrome.PID_WALL for e in with_wall)


def test_file_roundtrip(tmp_path, traced):
    path = chrome.dump(traced, tmp_path / "t.json",
                       meta={"mesh": "tiny"})
    events = chrome.load(path)
    assert events == chrome.to_events(traced)
    doc = json.loads(path.read_text())
    assert doc["otherData"]["mesh"] == "tiny"
    assert doc["otherData"]["exporter"] == "repro.obs.chrome"


def test_loads_rejects_non_trace():
    with pytest.raises(ValueError, match="trace_event"):
        chrome.loads("[1, 2, 3]")
    with pytest.raises(ValueError, match="list"):
        chrome.loads('{"traceEvents": 7}')


def test_raw_worker_events_pass_through():
    t = Tracer()
    raw = {"ph": "X", "name": "run x", "pid": 100, "tid": 1,
           "ts": 0, "dur": 5, "args": {}}
    t.ingest([raw])
    assert raw in chrome.to_events(t)
