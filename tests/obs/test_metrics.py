"""The metrics registry: determinism, lock safety, ambient gating."""

import json
import math
import threading

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    series_key,
)


def test_series_key_is_canonical():
    assert series_key("x", {}) == "x"
    assert series_key("x", {"b": 2, "a": 1}) == "x{a=1,b=2}"
    # label order never matters: one series, one identity.
    assert (series_key("x", {"a": 1, "b": 2})
            == series_key("x", {"b": 2, "a": 1}))


def test_counter_is_monotonic():
    reg = MetricsRegistry()
    c = reg.counter("hits", tenant="alice")
    c.inc()
    c.inc(2.5)
    assert reg.counter_value("hits", tenant="alice") == 3.5
    assert reg.counter_value("hits", tenant="bob") == 0.0  # absent = 0
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_moves_both_ways():
    reg = MetricsRegistry()
    g = reg.gauge("queue_depth")
    g.set(4)
    g.inc()
    g.dec(2)
    assert reg.snapshot()["gauges"]["queue_depth"] == 3.0


def test_histogram_buckets_and_quantiles():
    h = Histogram(threading.Lock(), bounds=(1.0, 5.0, 10.0))
    assert h.quantile(0.5) is None  # empty
    for v in (0.1, 0.2, 3.0, 7.0):
        h.observe(v)
    assert h.counts == [2, 1, 1, 0]
    # quantiles are bucket-upper-bound estimates, deterministic by
    # construction.
    assert h.quantile(0.5) == 1.0
    assert h.quantile(0.95) == 10.0
    h.observe(99.0)  # overflow bucket
    assert h.quantile(1.0) == math.inf
    d = h.to_dict()
    assert d["count"] == 5
    assert d["buckets"][-1] == ["+inf", 1]
    with pytest.raises(ValueError):
        h.observe(float("nan"))
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram(threading.Lock(), bounds=())
    with pytest.raises(ValueError):
        Histogram(threading.Lock(), bounds=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram(threading.Lock(), bounds=(1.0, 1.0))


def test_registry_get_or_create_is_stable():
    reg = MetricsRegistry()
    assert reg.counter("a", t="x") is reg.counter("a", t="x")
    assert reg.histogram("h") is reg.histogram("h", bounds=DEFAULT_BUCKETS)
    # silently disagreeing bucket bounds is how dashboards lie: refuse.
    with pytest.raises(ValueError):
        reg.histogram("h", bounds=(1.0, 2.0))


def test_snapshot_is_key_sorted_and_json_stable():
    def build():
        reg = MetricsRegistry()
        reg.counter("b_total", tenant="bob").inc()
        reg.counter("a_total", tenant="alice").inc(2)
        reg.gauge("depth").set(1)
        reg.histogram("wait_s", bounds=(0.5, 2.0)).observe(0.1)
        return json.dumps(reg.snapshot(), sort_keys=True)

    one, two = build(), build()
    assert one == two
    snap = json.loads(one)
    assert list(snap["counters"]) == sorted(snap["counters"])


def test_snapshot_under_concurrent_writes_is_consistent():
    reg = MetricsRegistry()
    stop = threading.Event()

    def hammer():
        c = reg.counter("spins")
        h = reg.histogram("lat", bounds=(1.0,))
        while not stop.is_set():
            c.inc()
            h.observe(0.5)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    try:
        for _ in range(50):
            snap = reg.snapshot()
            hist = snap["histograms"].get("lat")
            if hist is not None:
                # a torn cut would let count drift from the bucket sum.
                assert hist["count"] == sum(n for _, n in hist["buckets"])
    finally:
        stop.set()
        for t in threads:
            t.join()


def test_ambient_registry_defaults_to_disabled():
    assert metrics.active() is None
    reg = MetricsRegistry()
    with metrics.use(reg):
        assert metrics.active() is reg
        inner = MetricsRegistry()
        with metrics.use(inner):
            assert metrics.active() is inner
        assert metrics.active() is reg
    assert metrics.active() is None


def test_executor_publishes_into_ambient_registry(tmp_path):
    from repro.experiments.config import RunConfig
    from repro.experiments.executor import ExecutionPlan, execute_plan

    plan = ExecutionPlan.from_configs(
        [RunConfig(opt="vanilla", vector_size=16, mesh_dims=(4, 4, 4))])
    reg = MetricsRegistry()
    with metrics.use(reg):
        res = execute_plan(plan, cache_dir=tmp_path, jobs=1)
    assert not res.failed
    assert reg.counter_value("executor_events_total", kind="done") == 1
    assert reg.snapshot()["gauges"]["executor_queue_depth"] == 0.0


def test_metrics_off_leaves_cache_payload_bytes_identical(tmp_path):
    """The zero-cost guard, registry edition: with metrics (and tracing)
    disabled the executor writes byte-for-byte the seed's artifacts, and
    an *enabled* registry still never touches payload bytes."""
    from repro.experiments.config import RunConfig
    from repro.experiments.executor import ExecutionPlan, execute_plan

    plan = ExecutionPlan.from_configs(
        [RunConfig(opt="vanilla", vector_size=16, mesh_dims=(4, 4, 4)),
         RunConfig(opt="vec1", vector_size=64, mesh_dims=(4, 4, 4))])
    assert metrics.active() is None  # the default: disabled
    bare = execute_plan(plan, cache_dir=tmp_path / "bare", jobs=1)
    with metrics.use(MetricsRegistry()):
        metered = execute_plan(plan, cache_dir=tmp_path / "metered", jobs=1)
    assert not bare.failed and not metered.failed
    bare_files = {p.name: p.read_bytes()
                  for p in (tmp_path / "bare").rglob("*.json")}
    metered_files = {p.name: p.read_bytes()
                     for p in (tmp_path / "metered").rglob("*.json")}
    assert bare_files == metered_files
