"""Tests for the terminal trace renderers."""

from repro.obs.render import (
    mod40_fraction,
    render_phase_vl_hists,
    render_timeline,
    render_vl_hist,
)
from repro.obs.tracer import Tracer


def _tracer():
    t = Tracer()
    t.on_block(1, "b1", "scalar", 0.0, 100.0)
    t.on_block(6, "b6", "vector", 100.0, 900.0)
    return t


def test_timeline_shows_dominant_phase():
    out = render_timeline(_tracer(), buckets=10)
    assert "|" in out and "6" in out
    assert "1,000 cycles" in out


def test_timeline_empty():
    assert render_timeline(Tracer()) == "(empty trace)"


def test_mod40_fraction():
    assert mod40_fraction({}) == 0.0
    assert mod40_fraction({240: 3, 7: 1}) == 0.75
    assert mod40_fraction({40: 1, 80: 1}) == 1.0


def test_vl_hist_marks_multiples_of_40():
    out = render_vl_hist({240: 10, 13: 2}, title="h")
    lines = out.splitlines()
    assert any("vl  240" in ln and ln.rstrip().endswith("*") for ln in lines)
    assert any("vl   13" in ln and not ln.rstrip().endswith("*")
               for ln in lines)
    assert "Vitruvius" in out


def test_vl_hist_empty_and_top_filter():
    assert "(no vector instructions)" in render_vl_hist({})
    out = render_vl_hist({i: i for i in range(1, 20)}, top=3)
    bars = [ln for ln in out.splitlines() if ln.startswith("  vl ")]
    assert len(bars) == 3


def test_per_phase_blocks():
    out = render_phase_vl_hists({1: {240: 5}, 6: {240: 7}, 7: {}})
    assert "phase 1" in out and "phase 6" in out and "phase 7" not in out
