"""Tests for the full evaluation report generator."""

import pytest

from repro.experiments.runner import Session
from repro.experiments.summary import ARTIFACTS, evaluation_report, render_artifact


@pytest.fixture(scope="module")
def session():
    return Session(mesh_dims=(4, 4, 4), use_disk=False)


def test_artifact_list_covers_all_paper_items():
    names = [n for n, _ in ARTIFACTS]
    assert {f"table{i}" for i in range(1, 7)} <= set(names)
    assert {f"figure{i}" for i in range(2, 14)} <= set(names)
    assert len(names) == 18


def test_render_each_artifact(session):
    for name, _ in ARTIFACTS:
        text = render_artifact(name, session)
        assert text.strip(), name


def test_render_unknown_artifact(session):
    with pytest.raises(KeyError):
        render_artifact("figure99", session)
    with pytest.raises(KeyError):
        render_artifact("poster", session)


def test_full_report_structure(session):
    text = evaluation_report(session)
    assert "REPRODUCTION EVALUATION REPORT" in text
    assert "Table 5" in text and "Figure 13" in text
    assert "HEADLINE" in text
    assert "64 HEX08 elements" in text
