"""RunConfig pass schedules + the transformed golden-check mode."""

import pytest

from repro.experiments.config import TINY_MESH, RunConfig
from repro.experiments.executor import MODEL_VERSION, build_miniapp
from repro.validation.golden import golden_check


def test_model_version_bumped_for_pass_pipeline():
    # the pass-pipeline refactor changed how kernels are produced, so
    # pre-refactor disk caches must be invalidated.
    assert int(MODEL_VERSION) >= 5


def test_runconfig_passes_default_absent_from_key():
    cfg = RunConfig(opt="ivec2", mesh_dims=TINY_MESH)
    assert cfg.passes is None
    assert "passes" not in cfg.key()


def test_runconfig_explicit_passes_in_key():
    cfg = RunConfig(opt="vanilla", mesh_dims=TINY_MESH,
                    passes=("const-trip-count",))
    assert "passes[const-trip-count]" in cfg.key()
    other = RunConfig(opt="vanilla", mesh_dims=TINY_MESH)
    assert cfg.key() != other.key()


def test_from_kwargs_normalizes_passes_to_tuple():
    cfg = RunConfig.from_kwargs(mesh="tiny", opt="vanilla",
                                passes=["const-trip-count",
                                        "loop-interchange"])
    assert cfg.passes == ("const-trip-count", "loop-interchange")


def test_from_kwargs_rejects_unknown_keyword():
    with pytest.raises(TypeError, match="unknown RunConfig"):
        RunConfig.from_kwargs(mesh="tiny", pases=("x",))


def test_build_miniapp_forwards_passes():
    cfg = RunConfig(opt="vanilla", vector_size=16, mesh_dims=TINY_MESH,
                    passes=("const-trip-count", "loop-interchange"))
    app = build_miniapp(cfg)
    assert app.pipeline.pass_names == cfg.passes
    # the explicit schedule spells a known rung; the label is derived.
    assert app.opt == "ivec2"


def test_explicit_passes_match_rung_counters():
    from repro.experiments.executor import simulate_to_dict

    rung = simulate_to_dict(RunConfig(opt="vec2", vector_size=16,
                                      mesh_dims=TINY_MESH))
    spelled = simulate_to_dict(RunConfig(opt="vanilla", vector_size=16,
                                         mesh_dims=TINY_MESH,
                                         passes=("const-trip-count",)))
    assert rung == spelled


def test_golden_transformed_validates_every_prefix():
    report = golden_check("vec1", transformed=True)
    assert report.ok
    assert report.stages == [
        (), ("const-trip-count",),
        ("const-trip-count", "loop-interchange"),
        ("const-trip-count", "loop-interchange", "loop-fission")]
    assert report.to_dict()["stages"][0] == []


def test_golden_transformed_trivial_for_vanilla():
    report = golden_check("vanilla", transformed=True)
    assert report.ok and report.stages == [()]
