"""Tests for the table/figure generators (structure; shape assertions on
the full mesh live in benchmarks/)."""

import pytest

from repro.experiments import figures, tables
from repro.experiments.config import VECTOR_SIZES
from repro.experiments.runner import Session


@pytest.fixture(scope="module")
def session():
    return Session(mesh_dims=(4, 4, 4), use_disk=False)


def test_table1_static():
    t = tables.table1()
    rows = t.rows()
    assert rows[0] == ["Flag", "Description"]
    flags = [r[0] for r in rows[1:]]
    assert "-O3" in flags and "-mepi" in flags
    assert len(flags) == 8  # the paper lists eight


def test_table2_platforms():
    t = tables.table2()
    rows = t.rows()
    assert rows[0][1:] == ["RISC-V VEC", "MareNostrum 4", "SX-Aurora"]
    data = {r[0]: r[1:] for r in rows[1:]}
    assert data["Frequency [MHz]"] == ["50", "2100", "1600"]
    assert data["Throughput [FLOP/cycle]"] == ["16", "32", "192"]


def test_table3_fractions_sum_to_one(session):
    t = tables.table3(session)
    assert sum(t.fractions.values()) == pytest.approx(1.0)
    assert len(t.rows()[0]) == 9


def test_table4_structure(session):
    t = tables.table4(session)
    assert set(t.mix) == set(VECTOR_SIZES)
    for vs, phases in t.mix.items():
        assert set(phases) == set(range(1, 9))
        assert all(0.0 <= v <= 1.0 for v in phases.values())
        # phases 1, 2, 8 never vectorize under vanilla flags
        assert phases[1] == 0.0 and phases[2] == 0.0 and phases[8] == 0.0


def test_table5_columns(session):
    t = tables.table5(session)
    assert set(t.per_vs) == set(VECTOR_SIZES)
    vcpi, avl, n = t.per_vs[64]
    assert vcpi > 0 and avl == pytest.approx(64, rel=0.05) and n > 0


def test_table6_r_squared_in_range(session):
    t = tables.table6(session)
    assert set(t.results) == {1, 8}
    for res in t.results.values():
        assert res.r_squared <= 1.0


def test_figure2_series(session):
    f = figures.figure2(session)
    assert f.xs == list(VECTOR_SIZES)
    assert all(v > 0 for v in f.series["total cycles"])


def test_figure3_buckets(session):
    f = figures.figure3(session)
    assert set(f.series) == {"arithmetic", "memory", "control_lane"}
    # memory dominates the vector mix (the paper's ~70% observation)
    i = f.xs.index(256)
    assert f.series["memory"][i] > f.series["arithmetic"][i]


def test_figure4_percentages(session):
    f = figures.figure4(session)
    for i in range(len(f.xs)):
        total = sum(f.series[k][i] for k in f.series)
        assert total == pytest.approx(100.0, abs=0.1)


def test_figure5_6_7_optimization_columns(session):
    assert set(figures.figure5(session).series) == {"vanilla", "vec2"}
    assert set(figures.figure6(session).series) == {"vanilla", "vec2", "ivec2"}
    assert set(figures.figure7(session).series) == {"vanilla", "vec1"}


def test_figure9_normalized_to_vs16(session):
    f = figures.figure9(session)
    i16 = f.xs.index(16)
    for label, vals in f.series.items():
        assert vals[i16] == pytest.approx(100.0)


def test_figure10_omits_phase8(session):
    f = figures.figure10(session)
    assert "phase 8" not in f.series
    assert all(0.0 <= v <= 100.0 + 1e-9 for vals in f.series.values() for v in vals)


def test_figure11_baseline_normalization(session):
    f = figures.figure11(session)
    assert set(f.series) == {"vanilla", "vec2", "ivec2", "vec1"}
    assert all(v > 0 for vals in f.series.values() for v in vals)


def test_figure12_platforms(session):
    f = figures.figure12(session)
    assert set(f.series) == {"riscv_vec", "sx_aurora", "mn4_avx512"}


def test_figure13_mn4(session):
    f = figures.figure13(session)
    assert set(f.series) == {"mini-app", "phase 2"}
    # phase-2 speed-up drives (and exceeds) the overall one
    for i in range(len(f.xs)):
        assert f.series["phase 2"][i] >= f.series["mini-app"][i] * 0.8


def test_series_at_accessor(session):
    f = figures.figure2(session)
    assert f.at(64, "total cycles") == f.series["total cycles"][f.xs.index(64)]
    with pytest.raises(ValueError):
        f.at(99, "total cycles")
