"""The validation layer: counter invariants, FLOP ladder, golden checks,
and their integration with ``execute_plan(validate=True)``."""

from collections import Counter

import numpy as np

from repro.experiments.config import TINY_MESH, RunConfig
from repro.experiments.executor import (
    ExecutionPlan,
    execute_plan,
    simulate_run,
    simulate_to_dict,
    store_payload,
)
from repro.metrics.counters import PhaseCounters, RunCounters
from repro.validation import (
    check_flop_ladder,
    check_phase_counters,
    check_phase_digest_ladder,
    check_run_counters,
    golden_check,
    phase_output_digests,
    validate_run,
    vl_max_for,
)

CFG = RunConfig(opt="vanilla", vector_size=16, mesh_dims=TINY_MESH)


def _phase(**over) -> PhaseCounters:
    pc = PhaseCounters(phase=1, cycles_total=100.0, cycles_vector=40.0,
                       instr_scalar=10.0, instr_scalar_mem=4.0,
                       instr_vector_arith=2.0, vl_sum=16.0, flops=8.0,
                       vl_hist=Counter({8: 2}))
    for k, v in over.items():
        setattr(pc, k, v)
    return pc


# -- structural invariants --------------------------------------------------


def test_healthy_phase_passes():
    assert check_phase_counters(_phase(), vl_max=256) == []


def test_real_run_passes():
    run = simulate_run(CFG)
    assert validate_run(CFG, run) == []


def test_nan_counter_detected():
    out = check_phase_counters(_phase(cycles_total=float("nan")))
    assert any("non-finite" in v for v in out)


def test_negative_counter_detected():
    out = check_phase_counters(_phase(flops=-1.0))
    assert any("negative" in v for v in out)


def test_vector_cycles_capped_by_total():
    out = check_phase_counters(_phase(cycles_vector=200.0))
    assert any("exceed total" in v for v in out)


def test_scalar_mem_capped_by_scalar():
    out = check_phase_counters(_phase(instr_scalar_mem=11.0))
    assert any("scalar memory" in v for v in out)


def test_vl_hist_must_agree_with_iv_and_vlsum():
    out = check_phase_counters(_phase(vl_sum=999.0))
    assert any("vl_sum" in v for v in out)
    out = check_phase_counters(_phase(instr_vector_arith=50.0))
    assert any("i_v" in v for v in out)


def test_avl_above_vl_max_detected():
    # an 8-lane histogram on a machine whose vl_max is 4 is impossible.
    out = check_phase_counters(_phase(), vl_max=4)
    assert any("outside [0, 4]" in v for v in out)


def test_vl_max_for_resolves_machines():
    assert vl_max_for("riscv_vec") == 256
    assert vl_max_for("mn4_avx512") == 8


def test_run_counters_aggregate_all_phases():
    run = RunCounters(phases={1: _phase(), 2: _phase(cycles_total=float("inf"))})
    run.phases[2].phase = 2
    out = check_run_counters(run, vl_max=256)
    assert any(v.startswith("phase 2") for v in out)
    assert not any(v.startswith("phase 1") for v in out)


# -- FLOP conservation across the optimization ladder -----------------------


def _run_with_flops(flops: float) -> RunCounters:
    return RunCounters(phases={1: _phase(flops=flops)})


def test_ladder_conserved_is_clean():
    runs = {
        RunConfig(opt=o, vector_size=16, mesh_dims=TINY_MESH):
            _run_with_flops(8.0)
        for o in ("vanilla", "vec2", "vec1")}
    assert check_flop_ladder(runs) == {}


def test_ladder_drift_flags_whole_group():
    runs = {
        RunConfig(opt="vanilla", vector_size=16, mesh_dims=TINY_MESH):
            _run_with_flops(8.0),
        RunConfig(opt="vec1", vector_size=16, mesh_dims=TINY_MESH):
            _run_with_flops(8.5),
        # different vector_size => different group, not flagged.
        RunConfig(opt="vec1", vector_size=64, mesh_dims=TINY_MESH):
            _run_with_flops(7.0)}
    out = check_flop_ladder(runs)
    assert len(out) == 2
    assert all("FLOP drift" in v for msgs in out.values() for v in msgs)


def test_real_ladder_conserves_flops():
    plan = ExecutionPlan.ladder(mesh=TINY_MESH, vector_sizes=(16,))
    runs = {cfg: simulate_run(cfg) for cfg in plan}
    assert check_flop_ladder(runs) == {}


# -- executor integration ---------------------------------------------------


def test_validated_sweep_records_verdicts(tmp_path):
    plan = ExecutionPlan.smoke(TINY_MESH)
    res = execute_plan(plan, cache_dir=tmp_path, validate=True)
    assert not res.failed
    assert res.invalid_keys() == []
    assert set(res.validation) == {cfg.key() for cfg in plan}
    assert all(v["ok"] for v in res.validation.values())


def test_lying_worker_is_quarantined(tmp_path):
    target = ExecutionPlan.smoke(TINY_MESH).configs[0].key()
    events = []

    def lying_worker(cfg):
        payload = simulate_to_dict(cfg)
        if cfg.key() == target:  # lies on EVERY attempt: unrecoverable
            payload["1"]["cycles_total"] = float("nan")
        return payload

    res = execute_plan(ExecutionPlan.smoke(TINY_MESH), cache_dir=tmp_path,
                       retries=5, validate=True, quarantine_after=2,
                       worker=lying_worker, on_event=events.append)
    assert target in res.quarantined
    assert target in res.failed
    assert target not in res.runs
    # quarantine bounds the damage: 2 validation failures, not 6 attempts.
    assert sum(1 for ev in events if ev.kind == "invalid") == 2
    assert sum(1 for ev in events if ev.kind == "quarantined") == 1
    # the healthy configs are untouched.
    assert len(res.runs) == 3


def test_invalid_cache_entry_is_discarded_and_resimulated(tmp_path):
    # parseable, digest-intact, but violating the invariants: the
    # validated sweep must reject it instead of trusting the disk.
    payload = simulate_to_dict(CFG)
    payload["1"]["cycles_total"] = -payload["1"]["cycles_total"] - 1
    store_payload(tmp_path, CFG, payload)
    events = []
    res = execute_plan([CFG], cache_dir=tmp_path, validate=True,
                       on_event=events.append)
    kinds = [ev.kind for ev in events]
    assert kinds == ["invalid", "start", "done"]
    assert res.stats.cache_hits == 0
    assert res.stats.simulated == 1
    assert validate_run(CFG, res.runs[CFG.key()]) == []


def test_unvalidated_sweep_trusts_the_cache(tmp_path):
    payload = simulate_to_dict(CFG)
    payload["1"]["cycles_total"] = -payload["1"]["cycles_total"] - 1
    store_payload(tmp_path, CFG, payload)
    res = execute_plan([CFG], cache_dir=tmp_path, validate=False)
    assert res.stats.cache_hits == 1  # backwards-compatible fast path


# -- phase-output digest ladder ---------------------------------------------


def test_honest_digests_identical_across_all_rungs():
    # every optimization rung is a pure performance transformation, so
    # on the fixed probe all rungs fingerprint bit-identically -- this
    # is the precondition for the majority vote below.
    ladder = {opt: phase_output_digests(opt)
              for opt in ("vanilla", "vec2", "ivec2", "vec1", "scalar")}
    reference = ladder["vanilla"]
    assert reference  # non-empty, one digest per golden phase output
    assert all(fp == reference for fp in ladder.values())
    assert check_phase_digest_ladder(ladder) == {}


def test_digest_ladder_majority_flags_the_deviant():
    honest = {1: "aaaa", 2: "bbbb"}
    digests = {"run-a": honest, "run-b": honest, "run-c": dict(honest),
               "run-d": {1: "aaaa", 2: "eeee"}}
    out = check_phase_digest_ladder(digests)
    assert set(out) == {"run-d"}
    assert any("phase 2" in v and "3/4 runs agree" in v
               for v in out["run-d"])


def test_digest_ladder_needs_a_majority():
    # two runs disagreeing is a tie, not a verdict.
    assert check_phase_digest_ladder(
        {"a": {"1": "x"}, "b": {"1": "y"}}) == {}


# -- golden reference -------------------------------------------------------


def test_golden_check_clean():
    report = golden_check("vec1")
    assert report.ok
    assert report.violations == []
    assert max(report.max_abs_error.values()) < 1e-12


def test_golden_check_pins_corruption_to_the_struck_phase():
    from repro.faults.injector import flip_float64_bit

    def poison(inst, phase, chunk_index):
        if phase == 3 and chunk_index == 0:
            flip_float64_bit(np.asarray(inst.data("gpvol")), 0, 40)

    report = golden_check("vanilla", corrupt=poison)
    assert not report.ok
    assert any("phase 3" in v and "gpvol" in v for v in report.violations)
