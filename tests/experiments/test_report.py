"""Tests for the ASCII rendering helpers."""

import pytest

from repro.experiments.report import (
    format_barchart,
    format_heatmap,
    format_series_barchart,
    format_table,
    render,
    shade,
)


def test_format_table_alignment():
    rows = [["a", "bb"], ["ccc", "d"]]
    out = format_table(rows)
    lines = out.splitlines()
    assert lines[0] == "a    bb"
    assert lines[1].startswith("---")
    assert lines[2] == "ccc  d"


def test_format_table_empty():
    assert format_table([]) == ""


def test_shade_extremes():
    assert shade(0.0, 0.0, 1.0) == " "
    assert shade(1.0, 0.0, 1.0) == "@"
    assert shade(0.5, 0.5, 0.5) == " "  # degenerate range


def test_heatmap_contains_values_and_shades():
    values = {(y, x): float(x * y) for y in (1, 2) for x in (10, 20)}
    out = format_heatmap([10, 20], [1, 2], values)
    assert "40.0 @" in out
    assert "10.0" in out


def test_barchart_scales_to_peak():
    out = format_barchart(["a", "b"], [1.0, 2.0], width=10)
    lines = out.splitlines()
    assert lines[0].count("#") == 5
    assert lines[1].count("#") == 10


def test_barchart_empty():
    assert format_barchart([], []) == ""


def test_series_barchart_renders_title_and_groups():
    class FakeSeries:
        title = "T"
        xlabel = "X"
        xs = [1, 2]
        series = {"s": [1.0, 3.0]}

    out = format_series_barchart(FakeSeries())
    assert out.startswith("T")
    assert "X = 1" in out and "X = 2" in out


def test_render_table_object():
    class FakeTable:
        def rows(self):
            return [["h1", "h2"], ["v1", "v2"]]

    assert "h1" in render(FakeTable())
    with pytest.raises(TypeError):
        render(object())
