"""Executor hardening: guarded callbacks, durable cache writes, content
digests, deterministic backoff, and attempt-preserving pool fallback."""

import json
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import repro.experiments.executor as ex
from repro.experiments.config import TINY_MESH, RunConfig
from repro.experiments.executor import (
    ExecutionPlan,
    backoff_delay,
    cache_path,
    execute_plan,
    load_cached,
    payload_digest,
    simulate_run,
    simulate_to_dict,
    store_cached,
    store_payload,
)

CFG = RunConfig(opt="vanilla", vector_size=16, mesh_dims=TINY_MESH)


# -- guarded progress callbacks --------------------------------------------


def test_crashing_callback_does_not_sink_the_sweep(tmp_path, capsys):
    seen = []

    def bad_callback(ev):
        seen.append(ev.kind)
        raise ValueError("observer bug")

    res = execute_plan(ExecutionPlan.smoke(TINY_MESH), cache_dir=tmp_path,
                       on_event=bad_callback)
    assert not res.failed
    assert len(res.runs) == 4
    assert seen  # the callback did run (and crash) for every event
    err = capsys.readouterr().err
    assert "progress callback failed" in err
    assert "observer bug" in err


# -- durable cache writes and content digests ------------------------------


def test_store_leaves_no_tmp_residue(tmp_path):
    store_cached(tmp_path, CFG, simulate_run(CFG))
    assert [p.suffix for p in tmp_path.iterdir()] == [".json"]


def test_truncated_entry_is_discarded(tmp_path):
    store_cached(tmp_path, CFG, simulate_run(CFG))
    path = cache_path(tmp_path, CFG)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])  # the torn write
    assert load_cached(tmp_path, CFG) is None
    assert not path.exists()  # quarantined, will be re-simulated


def test_corrupt_entry_emits_cache_corrupt_event_and_is_counted(tmp_path):
    res = execute_plan([CFG], cache_dir=tmp_path)
    assert res.stats.cache_corrupt == 0
    path = cache_path(tmp_path, CFG)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])  # the torn write
    events = []
    res = execute_plan([CFG], cache_dir=tmp_path, on_event=events.append)
    corrupt = [ev for ev in events if ev.kind == "cache_corrupt"]
    assert len(corrupt) == 1
    assert corrupt[0].key == CFG.key()
    assert "discarded corrupt cache entry" in corrupt[0].error
    assert res.stats.cache_corrupt == 1
    assert res.stats.cache_hits == 0
    assert res.stats.simulated == 1  # transparently re-simulated
    assert not res.failed
    # the repaired entry is durable: the next sweep is a clean hit.
    third = execute_plan([CFG], cache_dir=tmp_path)
    assert third.stats.cache_hits == 1
    assert third.stats.cache_corrupt == 0


def test_bitrot_with_valid_json_is_caught_by_digest(tmp_path):
    store_cached(tmp_path, CFG, simulate_run(CFG))
    path = cache_path(tmp_path, CFG)
    payload = json.loads(path.read_text())
    payload["1"]["cycles_total"] += 1.0  # parseable, plausible, wrong
    path.write_text(json.dumps(payload, sort_keys=True))
    assert load_cached(tmp_path, CFG) is None


def test_entry_without_digest_is_rejected(tmp_path):
    path = cache_path(tmp_path, CFG)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(simulate_to_dict(CFG), sort_keys=True))
    assert load_cached(tmp_path, CFG) is None


def test_digest_ignores_reserved_metadata_keys():
    payload = {"1": {"cycles_total": 1.0}}
    annotated = {**payload, "__validation__": {"ok": True}}
    assert payload_digest(payload) == payload_digest(annotated)


def test_store_load_roundtrip(tmp_path):
    run = simulate_run(CFG)
    store_cached(tmp_path, CFG, run)
    from repro.metrics.counters import counters_to_dict

    assert counters_to_dict(load_cached(tmp_path, CFG)) == counters_to_dict(run)


# -- deterministic backoff --------------------------------------------------


def test_backoff_is_deterministic_and_exponential():
    d1 = backoff_delay(1.0, "some-key", 1)
    assert d1 == backoff_delay(1.0, "some-key", 1)
    assert 0.5 <= d1 <= 1.5
    d3 = backoff_delay(1.0, "some-key", 3)
    assert 2.0 <= d3 <= 6.0
    assert backoff_delay(1.0, "other-key", 1) != d1  # jitter spreads keys


def test_zero_base_means_no_backoff():
    assert backoff_delay(0.0, "k", 5) == 0.0


def test_retry_backoff_is_honoured_serially(tmp_path):
    import time

    attempts = []

    def flaky_worker(cfg):
        attempts.append(time.monotonic())
        if len(attempts) == 1:
            raise RuntimeError("transient")
        return simulate_to_dict(cfg)

    res = execute_plan([CFG], cache_dir=tmp_path, retries=1,
                       backoff_s=0.2, worker=flaky_worker)
    assert not res.failed
    gap = attempts[1] - attempts[0]
    assert gap >= backoff_delay(0.2, CFG.key(), 1) * 0.9


# -- broken-pool fallback keeps attempt counts (the old bug reset them) ----


class _DoomedPool:
    """A pool whose every submission dies like a SIGKILLed worker."""

    def __init__(self, max_workers):
        pass

    def submit(self, fn, cfg):
        fut = Future()
        fut.set_exception(BrokenProcessPool("worker died"))
        return fut

    def shutdown(self, wait=True, cancel_futures=False):
        pass


def test_serial_fallback_preserves_attempts(tmp_path, monkeypatch):
    monkeypatch.setattr(ex, "ProcessPoolExecutor", _DoomedPool)
    events = []
    res = execute_plan(ExecutionPlan.smoke(TINY_MESH), cache_dir=tmp_path,
                       jobs=2, retries=2, on_event=events.append)
    # the pool breaks; the serial fallback finishes the job.
    assert not res.failed
    assert len(res.runs) == 4
    done = [ev for ev in events if ev.kind == "done"]
    # every config burned one attempt in the broken pool, so the
    # fallback continues mid-budget -- the old bug restarted everything
    # at attempt 1 with a fresh retry allowance.
    assert sorted(ev.attempt for ev in done) == [2, 2, 2, 2]
    assert all(ev.attempt <= 3 for ev in events)


def test_exhausted_budget_fails_even_through_pool_breakage(tmp_path,
                                                           monkeypatch):
    monkeypatch.setattr(ex, "ProcessPoolExecutor", _DoomedPool)
    res = execute_plan([CFG], cache_dir=tmp_path, jobs=2, retries=1)
    # attempts 1 and 2 died with the pools; the budget is spent, so the
    # serial fallback must NOT grant a third try.
    assert CFG.key() in res.failed
    assert res.stats.simulated == 0


def test_fallback_interleaves_validation_failures_and_quarantine(
        tmp_path, monkeypatch):
    """Pool crashes and validation failures interleave: the serial
    fallback must keep both the consumed attempt counts AND the
    validation-failure tally that drives quarantine."""
    monkeypatch.setattr(ex, "ProcessPoolExecutor", _DoomedPool)
    plan = ExecutionPlan.smoke(TINY_MESH)
    liar = plan.configs[0].key()

    def lying_worker(cfg):
        payload = simulate_to_dict(cfg)
        if cfg.key() == liar:
            # parseable, plausible, wrong: only validation catches it.
            payload["1"]["cycles_total"] = -1.0
        return payload

    events = []
    res = execute_plan(plan, cache_dir=tmp_path, jobs=2, retries=4,
                       validate=True, worker=lying_worker,
                       on_event=events.append)
    # the liar was quarantined after 2 validation failures, well before
    # its 5-attempt retry budget ran out.
    assert liar in res.quarantined
    assert "2 validation failure(s)" in res.quarantined[liar]
    assert res.stats.quarantined == 1
    assert res.stats.validation_failures >= 2
    # honest configs completed -- mid-budget, not reset to attempt 1,
    # because the broken pools burned real attempts first.
    done = [ev for ev in events if ev.kind == "done"]
    assert {ev.key for ev in done} == {c.key() for c in plan.configs[1:]}
    assert all(ev.attempt >= 2 for ev in done)
    # the liar's invalid attempts also continued mid-budget.
    invalid = [ev for ev in events
               if ev.kind == "invalid" and ev.key == liar]
    assert len(invalid) == 2
    assert all(ev.attempt >= 2 for ev in invalid)
    assert invalid[0].attempt < invalid[1].attempt  # budget kept ticking
    quarantined = [ev for ev in events if ev.kind == "quarantined"]
    assert [ev.key for ev in quarantined] == [liar]
