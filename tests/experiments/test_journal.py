"""The sweep journal: replay semantics and end-to-end checkpoint/resume."""

import json

import pytest

from repro.experiments.config import TINY_MESH
from repro.experiments.executor import ExecutionPlan, execute_plan, simulate_to_dict
from repro.experiments.journal import (
    SweepJournal,
    repair_torn_tail,
    replay_journal,
)
from repro.faults.injector import InterruptingWorker

PLAN = ExecutionPlan.ladder(mesh=TINY_MESH, vector_sizes=(16,))


# -- replay semantics -------------------------------------------------------


def test_missing_journal_replays_to_none(tmp_path):
    assert replay_journal(tmp_path / "nope.journal") is None


def test_roundtrip_folding(tmp_path):
    path = tmp_path / "j"
    with SweepJournal(path) as j:
        j.record("sweep_start", plan=3)
        j.record("done", key="a")
        j.record("fail_attempt", key="b", attempt=1, error="boom")
        j.record("fail_attempt", key="b", attempt=2, error="boom")
        j.record("failed", key="c", error="dead")
        j.record("quarantined", key="d", error="lies")
    state = replay_journal(path)
    assert state.interrupted  # no sweep_end
    assert state.done == {"a"}
    assert state.fail_attempts["b"] == 2
    assert state.failed["c"] == "dead"
    assert state.quarantined == {"d": "lies"}
    assert "d" in state.failed


def test_sweep_end_marks_segment_complete(tmp_path):
    path = tmp_path / "j"
    with SweepJournal(path) as j:
        j.record("sweep_start")
        j.record("done", key="a")
        j.record("sweep_end")
    assert not replay_journal(path).interrupted


def test_only_last_segment_counts(tmp_path):
    path = tmp_path / "j"
    with SweepJournal(path) as j:
        j.record("sweep_start")
        j.record("failed", key="old", error="stale")
        j.record("sweep_end")
        j.record("sweep_start")
        j.record("done", key="new")
    state = replay_journal(path)
    assert "old" not in state.failed
    assert state.done == {"new"}


def test_done_clears_an_earlier_failure(tmp_path):
    path = tmp_path / "j"
    with SweepJournal(path) as j:
        j.record("sweep_start")
        j.record("failed", key="a", error="flaky")
        j.record("done", key="a")
    state = replay_journal(path)
    assert state.failed == {}
    assert state.done == {"a"}


def test_torn_trailing_line_is_ignored(tmp_path):
    path = tmp_path / "j"
    with SweepJournal(path) as j:
        j.record("sweep_start")
        j.record("done", key="a")
    with open(path, "a") as fh:  # the crash hit mid-append
        fh.write('{"ev": "done", "key": "b')
    state = replay_journal(path)
    assert state.done == {"a"}
    assert state.interrupted


def test_non_utf8_torn_tail_is_ignored(tmp_path):
    path = tmp_path / "j"
    with SweepJournal(path) as j:
        j.record("sweep_start")
        j.record("done", key="a")
    with open(path, "ab") as fh:  # power loss mid-sector: raw garbage
        fh.write(b'{"ev": "done", "key": "b\xff\xfe\x00')
    state = replay_journal(path)
    assert state.done == {"a"}


# -- torn-tail repair on open ----------------------------------------------


def test_repair_noops_on_absent_empty_and_healthy_files(tmp_path):
    assert repair_torn_tail(tmp_path / "absent") == 0
    empty = tmp_path / "empty"
    empty.touch()
    assert repair_torn_tail(empty) == 0
    healthy = tmp_path / "healthy"
    healthy.write_bytes(b'{"ev": "done"}\n')
    assert repair_torn_tail(healthy) == 0
    assert healthy.read_bytes() == b'{"ev": "done"}\n'


def test_repair_truncates_to_last_complete_line(tmp_path):
    path = tmp_path / "j"
    path.write_bytes(b'{"ev": "done", "key": "a"}\n{"ev": "done", "key')
    assert repair_torn_tail(path) == len(b'{"ev": "done", "key')
    assert path.read_bytes() == b'{"ev": "done", "key": "a"}\n'


def test_repair_empties_a_file_with_no_newline_at_all(tmp_path):
    path = tmp_path / "j"
    path.write_bytes(b'{"ev": "torn')
    assert repair_torn_tail(path) == len(b'{"ev": "torn')
    assert path.read_bytes() == b""


def test_opening_a_journal_repairs_the_tail_before_appending(tmp_path):
    path = tmp_path / "j"
    with SweepJournal(path) as j:
        j.record("sweep_start")
        j.record("done", key="a")
    with open(path, "ab") as fh:  # the crash hit mid-append
        fh.write(b'{"ev": "done", "key": "b')
    # a new writer must not splice its first record onto the fragment.
    with SweepJournal(path) as j:
        assert j.repaired_bytes == len(b'{"ev": "done", "key": "b')
        j.record("done", key="c")
    state = replay_journal(path)
    assert state.done == {"a", "c"}  # the torn "b" is gone, not mangled
    for line in path.read_text().splitlines():
        json.loads(line)  # every surviving line is valid JSON


def test_journal_lines_are_valid_sorted_json(tmp_path):
    path = tmp_path / "j"
    with SweepJournal(path) as j:
        j.record("sweep_start", plan=2, model="4")
        j.record("done", key="a")
    for line in path.read_text().splitlines():
        rec = json.loads(line)
        assert list(rec) == sorted(rec)


# -- end-to-end checkpoint/resume ------------------------------------------


def test_interrupted_sweep_resumes_without_rerunning(tmp_path):
    cache = tmp_path / "cache"
    journal = tmp_path / "sweep.journal"
    stop_after = 3

    with pytest.raises(KeyboardInterrupt):
        execute_plan(PLAN, cache_dir=cache, journal=journal,
                     worker=InterruptingWorker(stop_after))

    state = replay_journal(journal)
    assert state.interrupted
    assert len(state.done) == stop_after

    events = []
    res = execute_plan(PLAN, cache_dir=cache, journal=journal,
                       on_event=events.append)
    kinds = [ev.kind for ev in events]
    # completed work is recalled, only the remainder is simulated.
    assert kinds.count("cache_hit") == stop_after
    assert kinds.count("done") == len(PLAN) - stop_after
    assert not res.failed
    assert len(res.runs) == len(PLAN)
    # the journal's final segment is closed now.
    assert not replay_journal(journal).interrupted


def test_resume_carries_over_permanent_failures(tmp_path):
    cache = tmp_path / "cache"
    journal = tmp_path / "j"
    bad = PLAN.configs[0].key()

    def broken_worker(cfg):
        if cfg.key() == bad:
            raise RuntimeError("always broken")
        return simulate_to_dict(cfg)

    first = execute_plan(PLAN, cache_dir=cache, journal=journal,
                         retries=1, worker=broken_worker)
    assert bad in first.failed

    calls = []

    def counting_worker(cfg):
        calls.append(cfg.key())
        return simulate_to_dict(cfg)

    second = execute_plan(PLAN, cache_dir=cache, journal=journal,
                          retries=1, worker=counting_worker)
    # the journalled verdict stands: no retry budget is re-granted.
    assert bad in second.failed
    assert "journalled sweep" in second.failed[bad]
    assert calls == []
    assert len(second.runs) == len(PLAN) - 1


def test_resume_honours_consumed_retry_budget(tmp_path):
    cache = tmp_path / "cache"
    journal = tmp_path / "j"
    flaky = PLAN.configs[0].key()

    def crash_then_interrupt(cfg):
        # one failed attempt on the flaky config, then the sweep dies.
        if cfg.key() == flaky:
            raise RuntimeError("flaky")
        raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        execute_plan(PLAN, cache_dir=cache, journal=journal, retries=2,
                     worker=crash_then_interrupt)
    assert replay_journal(journal).fail_attempts[flaky] == 1

    events = []
    execute_plan(PLAN, cache_dir=cache, journal=journal, retries=2,
                 on_event=events.append)
    start = next(ev for ev in events
                 if ev.kind == "start" and ev.key == flaky)
    assert start.attempt == 2  # resumed mid-budget, not reset to 1
