"""Tests for the experiment runner and its caches."""

import json

import pytest

from repro.experiments.config import RunConfig
from repro.experiments.runner import (
    Session,
    counters_from_dict,
    counters_to_dict,
)

TINY = (4, 4, 4)


def test_run_config_key_stable_and_distinct():
    a = RunConfig(machine="riscv_vec", opt="vanilla", vector_size=64)
    b = RunConfig(machine="riscv_vec", opt="vanilla", vector_size=64)
    c = RunConfig(machine="riscv_vec", opt="vec1", vector_size=64)
    assert a.key() == b.key()
    assert a.key() != c.key()
    assert "vs64" in a.key()


def test_session_rejects_unknown_backend_eagerly():
    # the friendly registry error must fire at construction, not deep
    # inside the first sweep.
    with pytest.raises(ValueError, match="interpreter"):
        Session(mesh_dims=TINY, backend="fortran")


def test_counters_roundtrip(tmp_path):
    s = Session(mesh_dims=TINY, use_disk=False)
    run = s.run(opt="vanilla", vector_size=16)
    back = counters_from_dict(json.loads(json.dumps(counters_to_dict(run))))
    assert back.phase_ids() == run.phase_ids()
    for p in run.phase_ids():
        assert back.phases[p].cycles_total == pytest.approx(
            run.phases[p].cycles_total)
        assert back.phases[p].vl_hist == run.phases[p].vl_hist


def test_memoization_returns_same_object():
    s = Session(mesh_dims=TINY, use_disk=False)
    r1 = s.run(opt="vanilla", vector_size=16)
    r2 = s.run(opt="vanilla", vector_size=16)
    assert r1 is r2


def test_disk_cache_roundtrip(tmp_path):
    s1 = Session(mesh_dims=TINY, cache_dir=tmp_path, use_disk=True)
    r1 = s1.run(opt="vanilla", vector_size=16)
    assert list(tmp_path.glob("*.json"))
    s2 = Session(mesh_dims=TINY, cache_dir=tmp_path, use_disk=True)
    r2 = s2.run(opt="vanilla", vector_size=16)
    assert r2.total_cycles == pytest.approx(r1.total_cycles)
    for p in r1.phase_ids():
        assert r2.phases[p].i_t == pytest.approx(r1.phases[p].i_t)


def test_distinct_configs_not_conflated(tmp_path):
    s = Session(mesh_dims=TINY, cache_dir=tmp_path)
    a = s.run(opt="scalar", vector_size=16)
    b = s.run(opt="vec1", vector_size=16)
    assert a.total_cycles != b.total_cycles


def test_scalar_baseline_is_scalar_vs16():
    s = Session(mesh_dims=TINY, use_disk=False)
    base = s.scalar_baseline()
    assert base is s.run(opt="scalar", vector_size=16)
    assert all(pc.i_v == 0 for pc in base.phases.values())


def test_miniapp_memoized():
    s = Session(mesh_dims=TINY, use_disk=False)
    assert s.miniapp("vanilla", 16) is s.miniapp("vanilla", 16)
    assert s.miniapp("vanilla", 16) is not s.miniapp("vec1", 16)


def test_phase_cycles_helper():
    s = Session(mesh_dims=TINY, use_disk=False)
    run = s.run(opt="vanilla", vector_size=16)
    assert s.phase_cycles(6, opt="vanilla", vector_size=16) == pytest.approx(
        run.phases[6].cycles_total)
