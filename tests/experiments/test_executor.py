"""Tests for the parallel sweep executor and the config-first Session API."""

import json
import os

import pytest

from repro.experiments.config import FULL_MESH, QUICK_MESH, RunConfig
from repro.experiments.executor import (
    ExecutionPlan,
    SweepError,
    cache_path,
    execute_plan,
    load_cached,
    simulate_to_dict,
    store_cached,
)
from repro.experiments.runner import Session

TINY = (4, 4, 4)


def tiny_configs(n=3):
    return [RunConfig(opt="vanilla", vector_size=vs, mesh_dims=TINY)
            for vs in (16, 64, 128)[:n]]


def _flaky_worker(cfg):
    """Fails on the first call (cross-process flag file), then succeeds."""
    flag = os.environ["REPRO_TEST_FAIL_FLAG"]
    if not os.path.exists(flag):
        open(flag, "w").close()
        raise RuntimeError("injected worker failure")
    return simulate_to_dict(cfg)


# -- plans -------------------------------------------------------------------


def test_plan_dedup_keeps_order():
    cfgs = tiny_configs(2)
    plan = ExecutionPlan.from_configs(cfgs + cfgs)
    assert len(plan) == 2
    assert list(plan) == cfgs


def test_standard_plan_covers_the_paper_sweep():
    plan = ExecutionPlan.standard("full")
    # 1 scalar + 4 opts x 6 VS + 2 platforms x 2 x 6 + 1 assemble+solve
    assert len(plan) == 50
    keys = {c.key() for c in plan}
    assert all(c.mesh_dims == FULL_MESH for c in plan)
    assert any("scalar" in k for k in keys)
    assert any(k.startswith("sx_aurora-vec1") for k in keys)
    # the timed Krylov path rides the standard sweep end to end
    solve = [c for c in plan if c.solve]
    assert [c.key().endswith("-solve") for c in solve] == [True]


def test_smoke_plan_resolves_mesh_preset():
    plan = ExecutionPlan.smoke("quick")
    assert len(plan) == 4
    assert all(c.mesh_dims == QUICK_MESH for c in plan)
    assert sum(1 for c in plan if c.solve) == 1


# -- serial vs parallel ------------------------------------------------------


def test_parallel_results_byte_identical_to_serial(tmp_path):
    plan = ExecutionPlan.from_configs(tiny_configs(3))
    serial = execute_plan(plan, cache_dir=tmp_path / "serial", jobs=1)
    parallel = execute_plan(plan, cache_dir=tmp_path / "parallel", jobs=2)
    assert not serial.failed and not parallel.failed
    assert serial.stats.simulated == parallel.stats.simulated == 3

    serial_files = sorted(p.name for p in (tmp_path / "serial").iterdir())
    parallel_files = sorted(p.name for p in (tmp_path / "parallel").iterdir())
    assert serial_files == parallel_files
    for name in serial_files:
        assert (tmp_path / "serial" / name).read_bytes() == \
            (tmp_path / "parallel" / name).read_bytes()

    for cfg in plan:
        assert parallel.counters_for(cfg).total_cycles == pytest.approx(
            serial.counters_for(cfg).total_cycles)


# -- caching -----------------------------------------------------------------


def test_cache_hit_short_circuits_simulation(tmp_path):
    plan = ExecutionPlan.from_configs(tiny_configs(2))
    first = execute_plan(plan, cache_dir=tmp_path, jobs=1)
    assert first.stats.simulated == 2 and first.stats.cache_hits == 0

    events = []
    second = execute_plan(plan, cache_dir=tmp_path, jobs=1,
                          on_event=events.append)
    assert second.stats.simulated == 0 and second.stats.cache_hits == 2
    assert {e.kind for e in events} == {"cache_hit"}
    for cfg in plan:
        assert second.counters_for(cfg).total_cycles == pytest.approx(
            first.counters_for(cfg).total_cycles)


def test_events_carry_queue_depth_and_cache_tallies(tmp_path):
    """Every RunEvent snapshots live executor utilization."""
    plan = ExecutionPlan.from_configs(tiny_configs(3))
    events = []
    execute_plan(plan, cache_dir=tmp_path, jobs=1, on_event=events.append)
    done = [e for e in events if e.kind == "done"]
    assert len(done) == 3
    # queue drains monotonically; the last completion leaves it empty.
    depths = [e.queued for e in done]
    assert depths == sorted(depths, reverse=True) and depths[-1] == 0
    assert done[-1].cache_misses == 3 and done[-1].cache_hits == 0

    events2 = []
    execute_plan(plan, cache_dir=tmp_path, jobs=1, on_event=events2.append)
    hits = [e for e in events2 if e.kind == "cache_hit"]
    assert hits[-1].cache_hits == 3 and hits[-1].cache_misses == 0


def test_corrupted_cache_entry_discarded_and_resimulated(tmp_path):
    [cfg] = tiny_configs(1)
    execute_plan([cfg], cache_dir=tmp_path, jobs=1)
    path = cache_path(tmp_path, cfg)
    path.write_text('{"1": {"cycles_tot')  # truncated write

    result = execute_plan([cfg], cache_dir=tmp_path, jobs=1)
    assert result.stats.cache_hits == 0 and result.stats.simulated == 1
    assert json.loads(path.read_text())  # rewritten, valid again


def test_load_cached_rejects_wrong_schema(tmp_path):
    [cfg] = tiny_configs(1)
    path = cache_path(tmp_path, cfg)
    path.parent.mkdir(parents=True, exist_ok=True)

    path.write_text('["not", "an", "object"]')
    assert load_cached(tmp_path, cfg) is None
    assert not path.exists()  # bad entry deleted

    path.write_text('{"1": {"cycles_total": 1.0}}')  # missing fields
    assert load_cached(tmp_path, cfg) is None
    assert not path.exists()


def test_store_cached_roundtrip_and_no_tmp_litter(tmp_path):
    [cfg] = tiny_configs(1)
    run = execute_plan([cfg], cache_dir=tmp_path / "a", jobs=1).counters_for(cfg)
    store_cached(tmp_path / "b", cfg, run)
    back = load_cached(tmp_path / "b", cfg)
    assert back.total_cycles == pytest.approx(run.total_cycles)
    assert [p.name for p in (tmp_path / "b").iterdir()] == \
        [cache_path(tmp_path / "b", cfg).name]  # no .tmp files left behind


# -- fault tolerance ---------------------------------------------------------


def test_worker_failure_retried_serial(tmp_path):
    [cfg] = tiny_configs(1)
    calls = {"n": 0}

    def worker(c):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("boom")
        return simulate_to_dict(c)

    events = []
    result = execute_plan([cfg], cache_dir=tmp_path, jobs=1, retries=1,
                          worker=worker, on_event=events.append)
    assert not result.failed
    assert result.stats.retries == 1 and result.stats.simulated == 1
    assert [e.kind for e in events] == ["start", "retry", "start", "done"]
    assert calls["n"] == 2


def test_worker_failure_retried_parallel(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TEST_FAIL_FLAG", str(tmp_path / "flag"))
    [cfg] = tiny_configs(1)
    result = execute_plan([cfg], cache_dir=tmp_path, jobs=2, retries=1,
                          worker=_flaky_worker)
    assert not result.failed
    assert result.stats.retries == 1 and result.stats.simulated == 1


def test_retry_exhaustion_reported_not_raised(tmp_path):
    def worker(c):
        raise RuntimeError("always broken")

    plan = ExecutionPlan.from_configs(tiny_configs(2))
    result = execute_plan(plan, cache_dir=tmp_path, jobs=1, retries=1,
                          worker=worker)
    assert len(result.failed) == 2
    assert result.stats.failures == 2 and result.stats.retries == 2
    assert "always broken" in next(iter(result.failed.values()))


def test_per_run_timeout_abandons_hung_worker(tmp_path):
    import tests.experiments.test_executor as mod

    result = execute_plan(tiny_configs(1), cache_dir=tmp_path, jobs=2,
                          retries=0, timeout_s=0.2, worker=mod._sleepy_worker)
    assert len(result.failed) == 1
    assert "timed out" in next(iter(result.failed.values()))


def _sleepy_worker(cfg):
    import time

    time.sleep(1.5)
    return simulate_to_dict(cfg)


# -- Session façade ----------------------------------------------------------


def test_session_run_accepts_config_first():
    s = Session(mesh_dims=TINY, use_disk=False)
    cfg = s.config(opt="vanilla", vector_size=16)
    assert s.run(cfg) is s.run(opt="vanilla", vector_size=16)


def test_session_run_many_returns_input_order(tmp_path):
    s = Session(mesh_dims=TINY, cache_dir=tmp_path)
    cfgs = tiny_configs(3)
    runs = s.run_many(list(reversed(cfgs)), jobs=2)
    assert [r.total_cycles for r in runs] == \
        [s.run(c).total_cycles for c in reversed(cfgs)]
    # memoized: run_many again returns identical objects, no re-simulation
    assert s.run_many(cfgs)[0] is s.run(cfgs[0])


def test_session_run_many_serial_reuses_session_mesh(tmp_path):
    s = Session(mesh_dims=TINY, cache_dir=tmp_path)
    s.run_many(tiny_configs(2), jobs=1)
    assert ("vanilla", 16, 0) in s._apps  # went through the in-process path


def test_session_run_many_raises_on_permanent_failure(tmp_path, monkeypatch):
    import repro.experiments.runner as runner_mod

    s = Session(mesh_dims=TINY, cache_dir=tmp_path, retries=0)
    orig = runner_mod.execute_plan

    def broken_worker(cfg):
        raise RuntimeError("dead")

    def failing_plan(plan, **kw):
        # force the in-process path so the closure worker needs no pickling
        kw.update(worker=broken_worker, jobs=1)
        return orig(plan, **kw)

    monkeypatch.setattr(runner_mod, "execute_plan", failing_plan)
    with pytest.raises(SweepError, match="failed permanently"):
        s.run_many(tiny_configs(1), jobs=2)


def test_session_recovers_from_corrupt_cache(tmp_path):
    s1 = Session(mesh_dims=TINY, cache_dir=tmp_path)
    r1 = s1.run(opt="vanilla", vector_size=16)
    cache_file = next(tmp_path.glob("*.json"))
    cache_file.write_text("not json at all")

    s2 = Session(mesh_dims=TINY, cache_dir=tmp_path)
    r2 = s2.run(opt="vanilla", vector_size=16)
    assert r2.total_cycles == pytest.approx(r1.total_cycles)
    assert json.loads(next(tmp_path.glob("*.json")).read_text())


# -- config-first API --------------------------------------------------------


def test_run_config_from_kwargs():
    cfg = RunConfig.from_kwargs(mesh="quick", opt="vec1", vs=64)
    assert cfg.mesh_dims == QUICK_MESH
    assert cfg.vector_size == 64 and cfg.opt == "vec1"
    assert RunConfig.from_kwargs().mesh_dims == FULL_MESH
    assert RunConfig.from_kwargs(mesh=(2, 2, 2)).mesh_dims == (2, 2, 2)


def test_run_config_from_kwargs_rejects_junk():
    with pytest.raises(TypeError, match="unknown RunConfig"):
        RunConfig.from_kwargs(optimization="vec1")
    with pytest.raises(ValueError, match="unknown mesh preset"):
        RunConfig.from_kwargs(mesh="huge")


def test_run_config_solve_round_trips():
    cfg = RunConfig(opt="vanilla", vector_size=16, mesh_dims=TINY, solve=True)
    assert cfg.key().endswith("-solve")
    wire = cfg.to_dict()
    assert wire["solve"] is True
    assert RunConfig.from_dict(wire) == cfg
    # off by default: no dict key, no key suffix -- existing caches and
    # bench baselines keep their spelling.
    plain = RunConfig(opt="vanilla", vector_size=16, mesh_dims=TINY)
    assert "solve" not in plain.to_dict()
    assert not plain.key().endswith("-solve")
    assert RunConfig.from_dict(plain.to_dict()) == plain


def test_simulate_to_dict_solve_payload():
    from repro.metrics.counters import counters_from_dict

    cfg = RunConfig(opt="vanilla", vector_size=8, mesh_dims=(3, 2, 2),
                    solve=True)
    payload = simulate_to_dict(cfg)
    # the solver phases ride next to the assembly phases...
    assert {"9", "10", "11", "12"} <= set(payload)
    assert all(payload[p]["cycles_total"] > 0 for p in ("9", "10", "11", "12"))
    # ...and the convergence record lives under the reserved key,
    # invisible to both the counter parser and the content digest.
    info = payload["__solve__"]
    assert info["converged"] and info["iterations"] >= 1
    assert info["method"] == "bicgstab" and info["residual"] < 1e-6
    run = counters_from_dict(payload)
    assert set(run.phases) >= {9, 10, 11, 12}
    from repro.experiments.executor import payload_digest
    stripped = {k: v for k, v in payload.items() if k != "__solve__"}
    assert payload_digest(payload) == payload_digest(stripped)


def test_public_api_surface():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None
    assert {"Session", "RunConfig", "ExecutionPlan", "MiniApp", "box_mesh",
            "get_machine", "__version__"} <= set(repro.__all__)
