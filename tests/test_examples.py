"""Smoke tests: the runnable examples stay runnable.

Each example is executed as a subprocess (the way a user runs it) and
its key output lines are checked.  The two sweep examples are exercised
through their underlying Session in the experiments tests instead (they
simulate dozens of configurations).
"""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 300) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "speed-up vs scalar" in out
    assert "vectorized" in out
    # the headline lands in the paper's neighbourhood
    import re

    m = re.search(r"speed-up vs scalar VECTOR_SIZE=16: (\d+\.\d+)x", out)
    assert m and 6.0 <= float(m.group(1)) <= 9.0


def test_cavity_flow():
    out = run_example("cavity_flow.py")
    assert "assembly + solver substrate: OK" in out
    assert "bicgstab iterations" in out


def test_trace_analysis():
    out = run_example("trace_analysis.py")
    assert "trace-derived cycles match the hardware counters: OK" in out
    assert "phase timeline" in out


def test_advisor_loop():
    out = run_example("advisor_loop.py")
    assert "vanilla -> vec2 -> ivec2 -> vec1" in out
    assert "final speed-up over vanilla" in out
