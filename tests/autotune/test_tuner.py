"""The tuner pipeline: pruned-never-timed, determinism, the CI fixture."""

import json
from pathlib import Path

import pytest

from repro.autotune import (
    VEC1_PASSES,
    run_autotune,
    validate_schedule,
)
from repro.autotune.costmodel import ScheduleCostModel
from repro.autotune.space import enumerate_candidates
from repro.experiments.executor import simulate_to_dict
from repro.machine.machines import get_machine

FIXTURE = Path(__file__).parent.parent / "fixtures" / "autotune_winners.json"

#: cheap but non-trivial tuning configuration for unit tests (the CI
#: fixture test below runs the real --preset tiny configuration once).
SMALL = dict(machine="riscv_vec", vector_size=80, profile="smoke", seed=0)


@pytest.fixture(scope="module")
def small_report(tmp_path_factory):
    cache = tmp_path_factory.mktemp("autotune-cache")
    return run_autotune((3, 2, 2), cache_dir=cache, **SMALL)


# ---------------------------------------------------------------------------
# pruned candidates are never executed
# ---------------------------------------------------------------------------


def test_pruned_candidates_never_timed(tmp_path):
    timed_keys = []

    def spy(cfg):
        timed_keys.append(cfg.key())
        return simulate_to_dict(cfg)

    rep = run_autotune((3, 2, 2), cache_dir=tmp_path / "cache",
                       use_disk=False, worker=spy, **SMALL)
    pruned = [c for c in rep.candidates if c.status == "pruned"]
    assert pruned, "expected the cost model to prune something"
    pruned_markers = {"passes[" + ",".join(c.schedule) + "]"
                      for c in pruned}
    for key in timed_keys:
        for marker in pruned_markers:
            assert marker not in key, (
                f"pruned schedule was executed: {key}")
    # and everything that reported cycles really was executed.
    assert len(timed_keys) == rep.counts["timed"]


def test_every_timed_candidate_passed_the_digest_ladder(small_report):
    for c in small_report.timed():
        assert c.digest_ok is True
        assert c.cycles_total is not None
        assert c.phase_cycles


def test_prune_reasons_recorded(small_report):
    for c in small_report.candidates:
        if c.status == "pruned":
            assert c.prune_reason
            assert c.cycles_total is None


# ---------------------------------------------------------------------------
# determinism: the CI diff contract
# ---------------------------------------------------------------------------


def test_report_is_byte_deterministic(small_report, tmp_path):
    again = run_autotune((3, 2, 2), cache_dir=tmp_path / "cache2",
                         **SMALL)
    assert again.to_json() == small_report.to_json()


def test_seed_changes_the_report(tmp_path):
    other = run_autotune((3, 2, 2), cache_dir=tmp_path / "cache",
                         machine="riscv_vec", vector_size=80,
                         profile="smoke", seed=1)
    assert other.seed == 1  # different seed is stamped in the report


# ---------------------------------------------------------------------------
# winners + the VEC1 verdict
# ---------------------------------------------------------------------------


def test_small_run_rediscovers_vec1(small_report):
    fam = small_report.vec1_family
    assert fam["rediscovered"] is True
    for w in small_report.winners_per_phase.values():
        bases = {s.partition(":")[0] for s in w["schedule"]}
        assert bases <= set(VEC1_PASSES)


def test_winner_table_renders(small_report):
    md = small_report.winner_table_markdown()
    assert "| phase |" in md
    assert "rediscovered the paper's VEC1-family schedule" in md
    rows = small_report.winner_rows()
    assert rows[0][0] == "phase" and rows[-1][0] == "total"


def test_validate_schedule_rejects_nothing_legal():
    assert validate_schedule(("const-trip-count", "loop-interchange"),
                             vector_size=8)


# ---------------------------------------------------------------------------
# the committed CI fixture (the discovered-schedule ledger)
# ---------------------------------------------------------------------------


def test_ci_fixture_matches_a_fresh_tiny_run(tmp_path):
    """The ledger contract: ``repro autotune --preset tiny --profile
    smoke`` must keep reproducing the committed winners byte-for-byte
    (CI runs the CLI; this test runs the library with the identical
    configuration)."""
    fixture = json.loads(FIXTURE.read_text())
    rep = run_autotune((4, 4, 4), machine=fixture["machine"],
                       vector_size=fixture["vector_size"],
                       profile=fixture["profile"], seed=fixture["seed"],
                       cache_dir=tmp_path / "cache")
    got = rep.to_dict()
    assert got["winners"] == fixture["winners"]
    assert got["vec1_family"] == fixture["vec1_family"]
    assert got["vec1_family"]["rediscovered"] is True


def test_fixture_enumeration_covers_the_strip_family():
    """The tiny CI configuration really searches the mod-40 strip
    variants -- the rediscovery claim is meaningless otherwise."""
    fixture = json.loads(FIXTURE.read_text())
    cands = enumerate_candidates(get_machine(fixture["machine"]),
                                 fixture["vector_size"],
                                 fixture["profile"])
    assert any("strip-mine:40" in c for c in cands)
    model = ScheduleCostModel(params=get_machine(fixture["machine"]),
                              vector_size=fixture["vector_size"])
    survivors = [c for c in cands if model.prune_reason(c) is None]
    assert any("strip-mine:40" in c for c in survivors)
