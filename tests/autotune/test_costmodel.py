"""The static cost model: prune reasons and deterministic predictions."""

from hypothesis import given, settings, strategies as st

from repro.autotune.costmodel import (
    ScheduleCostModel,
    base_names,
    canonical_form,
    strip_size,
)
from repro.autotune.space import enumerate_candidates
from repro.machine.machines import MACHINES, get_machine

VEC1 = ("const-trip-count", "loop-interchange", "loop-fission")


def _model(machine="riscv_vec", vs=240):
    return ScheduleCostModel(params=get_machine(machine), vector_size=vs)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def test_base_names_strip_arguments():
    assert base_names(("strip-mine:40", "loop-fission")) == (
        "strip-mine", "loop-fission")


def test_strip_size_parses_argument():
    assert strip_size(("const-trip-count", "strip-mine:80")) == 80
    assert strip_size(("strip-mine",)) == 40  # pass default
    assert strip_size(VEC1) is None


def test_canonical_form_sorts_commuting_passes():
    assert canonical_form(("loop-fission", "const-trip-count")) == (
        "const-trip-count", "loop-fission")


# ---------------------------------------------------------------------------
# prune reasons
# ---------------------------------------------------------------------------


def test_canonical_schedules_survive():
    m = _model()
    for sched in ((), ("const-trip-count",), VEC1,
                  ("const-trip-count", "loop-interchange",
                   "loop-fission", "strip-mine:40")):
        assert m.prune_reason(sched) is None, sched


def test_non_canonical_order_pruned():
    m = _model()
    reason = m.prune_reason(("loop-fission", "const-trip-count"))
    assert reason is not None and "non-canonical" in reason


def test_strip_without_const_trip_count_pruned():
    reason = _model().prune_reason(("strip-mine:40",))
    assert reason is not None and "T5-runtime-trip-count" in reason


def test_indivisible_strip_pruned():
    reason = _model().prune_reason(("const-trip-count", "strip-mine:7"))
    assert reason is not None and "T5-indivisible" in reason


def test_oversized_strip_pruned():
    # usable VL on riscv_vec at vs=240 is 240; a strip that big is the
    # hardware's own behaviour, not a new schedule.
    reason = _model().prune_reason(("const-trip-count", "strip-mine:240"))
    assert reason is not None


def test_pruning_is_deterministic():
    m = _model()
    for sched in enumerate_candidates(get_machine("riscv_vec"), 240,
                                      "standard"):
        assert m.prune_reason(sched) == m.prune_reason(sched)


# ---------------------------------------------------------------------------
# predictions
# ---------------------------------------------------------------------------


def test_predict_prefers_vec1_over_baseline():
    m = _model()
    assert m.predict(VEC1) < m.predict(())


def test_predict_charges_strip_overhead():
    m = _model()
    assert (m.predict(VEC1 + ("strip-mine:40",)) > m.predict(VEC1))


@settings(max_examples=40, deadline=None)
@given(machine=st.sampled_from(sorted(MACHINES)),
       vs=st.sampled_from((8, 40, 80, 240, 480)))
def test_predict_is_total_and_deterministic(machine, vs):
    """Every enumerated candidate gets a finite, repeatable score --
    the report records predictions for pruned candidates too."""
    m = ScheduleCostModel(params=get_machine(machine), vector_size=vs)
    for sched in enumerate_candidates(get_machine(machine), vs, "standard"):
        a, b = m.predict(sched), m.predict(sched)
        assert a == b
        assert a == a  # not NaN
