"""StripMine: legality blockers, the rewrite, and digest round-trips."""

import pytest

from repro.cfd.csr import build_pattern
from repro.cfd.kernel_context import MiniAppContext
from repro.cfd.mesh import box_mesh
from repro.cfd.phases import build_baseline_kernels
from repro.compiler.ir import walk_loops
from repro.compiler.transforms import (
    ConstantTripCount,
    PipelineError,
    StripMine,
    pipeline_from_names,
)
from repro.validation.digests import (
    phase_output_digests,
    solver_phase_digests,
)
from repro.validation.probe import Probe

VS = 16


@pytest.fixture(scope="module")
def kernels():
    mesh = box_mesh(4, 4, 4)
    ctx = MiniAppContext(mesh, VS, nnz=build_pattern(mesh).nnz)
    return {k.phase: k for k in build_baseline_kernels(ctx.arrays, VS)}


@pytest.fixture(scope="module")
def promoted(kernels):
    """Phase-2 kernel after const-trip-count: compile-time ivect trips."""
    out, remark = ConstantTripCount().run(kernels[2])
    assert remark.status == "applied"
    return out


# ---------------------------------------------------------------------------
# construction + spelling
# ---------------------------------------------------------------------------


def test_strip_must_be_at_least_two():
    with pytest.raises(PipelineError, match="strip"):
        StripMine(strip=1)


def test_spelling_round_trip():
    p = StripMine(strip=40)
    assert p.spelling == "strip-mine:40"
    assert StripMine.parse_spelling_arg("40") == {"strip": 40}


def test_parse_spelling_rejects_garbage():
    with pytest.raises(PipelineError):
        StripMine.parse_spelling_arg("forty")
    with pytest.raises(PipelineError):
        StripMine.parse_spelling_arg("-3")


def test_pipeline_from_names_builds_parameterized_pass():
    pipe = pipeline_from_names(("const-trip-count", "strip-mine:8"))
    assert pipe.pass_names == ("const-trip-count", "strip-mine:8")
    assert pipe.passes[1].strip == 8


def test_unparameterized_pass_rejects_argument():
    with pytest.raises(PipelineError, match="takes no"):
        pipeline_from_names(("loop-fission:4",))


# ---------------------------------------------------------------------------
# legality blockers
# ---------------------------------------------------------------------------


def _codes(remark):
    return {b.code for b in remark.blockers}


def test_runtime_trip_count_is_illegal(kernels):
    out, remark = StripMine(strip=8).run(kernels[2])
    assert remark.status == "illegal"
    assert "T5-runtime-trip-count" in _codes(remark)
    assert out == kernels[2]


def test_indivisible_strip_is_illegal(promoted):
    out, remark = StripMine(strip=5).run(promoted)
    assert remark.status == "illegal"
    assert "T5-indivisible" in _codes(remark)
    assert out == promoted


def test_strip_covering_whole_trip_is_noop(promoted):
    _, remark = StripMine(strip=VS).run(promoted)
    assert remark.status == "not-applicable"


def test_double_application_is_illegal(promoted):
    once, remark = StripMine(strip=8).run(promoted)
    assert remark.status == "applied"
    # same strip again: the vector loop is already <= the strip -> no-op.
    _, same = StripMine(strip=8).run(once)
    assert same.status == "not-applicable"
    # a finer strip would shadow the existing strip variable -> illegal.
    again, remark2 = StripMine(strip=4).run(once)
    assert remark2.status == "illegal"
    assert "T5-already-stripped" in _codes(remark2)
    assert again == once


# ---------------------------------------------------------------------------
# the rewrite
# ---------------------------------------------------------------------------


def test_rewrite_shape(promoted):
    out, remark = StripMine(strip=8).run(promoted)
    assert remark.status == "applied"
    loops = {lp.var: lp for lp in walk_loops(out.body)}
    assert "ivect_strip" in loops
    outer, inner = loops["ivect_strip"], loops["ivect"]
    assert outer.extent.value == VS // 8
    assert inner.extent.value == 8
    # the strip loop wraps the vector loop directly.
    assert len(outer.body) == 1 and outer.body[0] is inner


def test_rewrite_preserves_vectorized_flag(promoted):
    before = {lp.var: lp.vectorized for lp in walk_loops(promoted.body)}
    out, _ = StripMine(strip=8).run(promoted)
    after = {lp.var: lp.vectorized for lp in walk_loops(out.body)}
    assert after["ivect"] == before["ivect"]


# ---------------------------------------------------------------------------
# digest round-trips: assembly ladder AND solver phases 9-12
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("schedule", [
    ("const-trip-count", "strip-mine:4"),
    ("const-trip-count", "loop-interchange", "strip-mine:4"),
    ("const-trip-count", "loop-interchange", "loop-fission",
     "strip-mine:4"),
])
def test_digest_ladder_round_trip(schedule):
    """Strip-mined code must be bit-identical on every rung of the
    ladder -- the assembly phases and the Krylov solver phases 9-12."""
    honest = Probe(opt="vanilla", backend="numpy")
    probe = Probe(opt="vanilla", backend="numpy", passes=schedule)
    assert phase_output_digests(probe) == phase_output_digests(honest)
    assert solver_phase_digests(probe) == solver_phase_digests(honest)


def test_digest_probe_actually_strips():
    """The round-trip above is only meaningful if the pass fired: at the
    probe's VECTOR_SIZE=8 a strip of 4 must be applied, not a no-op."""
    probe = Probe(opt="vanilla", backend="numpy",
                  passes=("const-trip-count", "strip-mine:4"))
    app = probe.build_app()
    applied = [r for r in app.transform_remarks
               if r.pass_name == "strip-mine" and r.status == "applied"]
    assert applied, "strip-mine:4 never applied at the probe vector size"
