"""Candidate enumeration: every schedule legal, profiles, strip family."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.autotune.space import (
    PROFILES,
    enumerate_candidates,
    schedule_label,
    strip_sizes,
)
from repro.compiler.transforms import (
    PASS_REGISTRY,
    legal_schedules,
    pipeline_from_names,
)
from repro.machine.machines import MACHINES, get_machine

_MACHINE_NAMES = sorted(MACHINES)


# ---------------------------------------------------------------------------
# strip sizes
# ---------------------------------------------------------------------------


def test_riscv_vec_strip_family_is_mod_40():
    params = get_machine("riscv_vec")
    sizes = strip_sizes(params, 240, "standard")
    assert sizes == (40, 80, 120, 160, 200)
    assert all(s % 40 == 0 for s in sizes)


def test_smoke_profile_keeps_one_size():
    params = get_machine("riscv_vec")
    assert strip_sizes(params, 240, "smoke") == (40,)


def test_short_vector_machine_has_no_strip_family():
    # mn4_avx512's usable vector length equals its lane basis: no room
    # to strip below it.
    params = get_machine("mn4_avx512")
    assert strip_sizes(params, 240, "standard") == ()


def test_unknown_profile_rejected():
    with pytest.raises(ValueError, match="profile"):
        strip_sizes(get_machine("riscv_vec"), 240, "exhaustive")


# ---------------------------------------------------------------------------
# enumeration
# ---------------------------------------------------------------------------


def test_base_schedules_are_the_frozen_nine():
    params = get_machine("mn4_avx512")  # no strip family -> bases only
    cands = enumerate_candidates(params, 240, "standard")
    assert cands == legal_schedules()
    assert len(cands) == 9


def test_strip_variants_extend_every_base():
    params = get_machine("riscv_vec")
    cands = enumerate_candidates(params, 240, "smoke")
    bases = legal_schedules()
    assert len(cands) == len(bases) * 2  # each base +- one strip size
    for base in bases:
        assert base in cands
        assert base + ("strip-mine:40",) in cands


def test_enumeration_is_deterministic():
    params = get_machine("riscv_vec")
    a = enumerate_candidates(params, 240, "standard")
    b = enumerate_candidates(params, 240, "standard")
    assert a == b


def test_schedule_label():
    assert schedule_label(()) == "baseline"
    assert schedule_label(("a", "b")) == "a+b"


# ---------------------------------------------------------------------------
# property: every enumerated schedule is constructible and ordered
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(machine=st.sampled_from(_MACHINE_NAMES),
       vector_size=st.integers(min_value=8, max_value=480),
       profile=st.sampled_from(PROFILES))
def test_every_candidate_builds_a_legal_pipeline(machine, vector_size,
                                                 profile):
    """Pass ``requires`` ordering + spelling legality, over the whole
    machine x vector-size x profile space: ``pipeline_from_names`` must
    accept every enumerated schedule (it raises on unknown spellings and
    on requires-order violations)."""
    params = get_machine(machine)
    for schedule in enumerate_candidates(params, vector_size, profile):
        pipe = pipeline_from_names(schedule)  # raises on any illegality
        assert pipe.pass_names == schedule
        seen = []
        for p in pipe:
            for req in type(p).requires:
                assert req.name in seen, (
                    f"{schedule}: '{p.name}' before its requirement "
                    f"'{req.name}'")
            seen.append(p.name)


@settings(max_examples=40, deadline=None)
@given(machine=st.sampled_from(_MACHINE_NAMES),
       vector_size=st.integers(min_value=8, max_value=480),
       profile=st.sampled_from(PROFILES))
def test_strip_sizes_divide_and_fit(machine, vector_size, profile):
    params = get_machine(machine)
    sizes = strip_sizes(params, vector_size, profile)
    assert sorted(set(sizes)) == list(sizes)  # ascending, no duplicates
    for s in sizes:
        assert 2 <= s < min(vector_size,
                            params.vpu.vl_max if params.vpu else s + 1)


@settings(max_examples=30, deadline=None)
@given(names=st.lists(st.sampled_from(sorted(
           n for n, cls in PASS_REGISTRY.items() if not cls.parameterized)),
       unique=True, max_size=3))
def test_legal_schedules_respect_requires(names):
    """Explicitly-named enumeration never emits an unconstructible
    permutation either."""
    for schedule in legal_schedules(names):
        pipeline_from_names(schedule)
