"""The circuit breaker state machine, on injected clock time."""

import pytest

from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.service.chaos import StepClock


def _breaker(clock, threshold=2, cooldown=10.0):
    return CircuitBreaker(failure_threshold=threshold, cooldown_s=cooldown,
                          clock=clock)


def test_closed_allows_and_tolerates_subthreshold_failures():
    b = _breaker(StepClock())
    assert b.allow()
    b.record_failure()
    assert b.state == CLOSED
    assert b.allow()


def test_threshold_trips_open():
    b = _breaker(StepClock())
    b.record_failure()
    b.record_failure()
    assert b.state == OPEN
    assert b.trips == 1
    assert not b.allow()
    assert "open" in b.describe()


def test_success_resets_the_failure_streak():
    b = _breaker(StepClock())
    b.record_failure()
    b.record_success()
    b.record_failure()
    assert b.state == CLOSED  # streak broken: 1+1 never reached 2


def test_cooldown_half_opens_with_a_single_probe():
    clock = StepClock()
    b = _breaker(clock)
    b.record_failure(), b.record_failure()
    clock.advance(10.0)
    assert b.state == HALF_OPEN
    assert b.allow()  # the one probe
    assert not b.allow()  # a second concurrent job may not pass


def test_probe_success_closes():
    clock = StepClock()
    b = _breaker(clock)
    b.record_failure(), b.record_failure()
    clock.advance(10.0)
    assert b.allow()
    b.record_success()
    assert b.state == CLOSED
    assert b.allow()


def test_probe_failure_reopens_for_another_cooldown():
    clock = StepClock()
    b = _breaker(clock)
    b.record_failure(), b.record_failure()
    clock.advance(10.0)
    assert b.allow()
    b.record_failure()
    assert b.state == OPEN
    assert b.trips == 2
    assert not b.allow()
    clock.advance(10.0)
    assert b.allow()  # half-open again


def test_threshold_must_be_positive():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)


def test_health_document():
    b = _breaker(StepClock())
    b.record_failure()
    health = b.health()
    assert health == {"state": "closed", "trips": 0,
                      "consecutive_failures": 1}
