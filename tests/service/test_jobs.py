"""Service journal replay: durable jobs, resume semantics, torn tails."""

from repro.experiments.config import TINY_MESH, RunConfig
from repro.service.jobs import (
    DONE,
    QUEUED,
    Job,
    ServiceJournal,
    replay_service_journal,
)

CFG_A = RunConfig(opt="scalar", vector_size=16, mesh_dims=TINY_MESH)
CFG_B = RunConfig(opt="vec1", vector_size=16, mesh_dims=TINY_MESH)


def test_missing_journal_replays_to_none(tmp_path):
    assert replay_service_journal(tmp_path / "nope") is None


def _submit(j, job_id, configs, tenant="alice", priority=0.0):
    j.record("submit", job_id=job_id, tenant=tenant, priority=priority,
             configs=[c.to_dict() for c in configs])


def test_config_roundtrips_through_the_journal(tmp_path):
    path = tmp_path / "svc.journal"
    with ServiceJournal(path) as j:
        _submit(j, "j00001", [CFG_A, CFG_B])
    state = replay_service_journal(path)
    job = state.jobs["j00001"]
    assert [c.key() for c in job.configs] == [CFG_A.key(), CFG_B.key()]


def test_finished_jobs_are_not_requeued(tmp_path):
    path = tmp_path / "svc.journal"
    with ServiceJournal(path) as j:
        _submit(j, "j00001", [CFG_A])
        j.record("job_start", job_id="j00001")
        j.record("config_done", job_id="j00001", key=CFG_A.key(),
                 digest="d1", source="computed")
        j.record("job_done", job_id="j00001")
    state = replay_service_journal(path)
    assert state.jobs["j00001"].status == DONE
    assert state.unfinished() == []


def test_interrupted_job_resumes_queued_with_completions_intact(tmp_path):
    path = tmp_path / "svc.journal"
    with ServiceJournal(path) as j:
        _submit(j, "j00001", [CFG_A, CFG_B])
        j.record("job_start", job_id="j00001")
        j.record("config_done", job_id="j00001", key=CFG_A.key(),
                 digest="d1", source="computed")
        # the service died here: no job_done.
    state = replay_service_journal(path)
    job = state.jobs["j00001"]
    assert job.status == QUEUED  # re-dispatched, not lost
    assert job.completed == {CFG_A.key(): "d1"}
    assert state.unfinished() == [job]


def test_rejections_are_counted(tmp_path):
    path = tmp_path / "svc.journal"
    with ServiceJournal(path) as j:
        j.record("rejected", tenant="mallory", reason="tenant rate limit")
        j.record("rejected", tenant="mallory", reason="tenant rate limit")
    assert replay_service_journal(path).rejected == 2


def test_drain_does_not_survive_a_restart(tmp_path):
    path = tmp_path / "svc.journal"
    with ServiceJournal(path) as j:
        j.record("drain")
        j.record("service_start", jobs=1)
    assert not replay_service_journal(path).draining


def test_failed_job_carries_error_and_failed_map(tmp_path):
    path = tmp_path / "svc.journal"
    with ServiceJournal(path) as j:
        _submit(j, "j00001", [CFG_A])
        j.record("job_start", job_id="j00001")
        j.record("job_failed", job_id="j00001", error="1 run(s) failed",
                 failed={CFG_A.key(): "boom"})
    job = replay_service_journal(path).jobs["j00001"]
    assert job.status == "failed"
    assert job.failed == {CFG_A.key(): "boom"}
    assert replay_service_journal(path).unfinished() == []


def test_next_seq_continues_after_existing_ids(tmp_path):
    path = tmp_path / "svc.journal"
    with ServiceJournal(path) as j:
        _submit(j, "j00007", [CFG_A])
    assert replay_service_journal(path).next_seq() == 8


def test_torn_tail_is_tolerated(tmp_path):
    path = tmp_path / "svc.journal"
    with ServiceJournal(path) as j:
        _submit(j, "j00001", [CFG_A])
        j.record("job_start", job_id="j00001")
    with open(path, "ab") as fh:  # crash mid-append: torn binary tail
        fh.write(b'{"ev": "config_done", "job_id": "j000\xff\x00')
    state = replay_service_journal(path)
    assert state.jobs["j00001"].completed == {}
    assert state.unfinished()  # the intact prefix was recovered


def test_unreadable_submit_record_is_skipped_whole(tmp_path):
    path = tmp_path / "svc.journal"
    with ServiceJournal(path) as j:
        j.record("submit", job_id="jBAD", tenant="x", priority=0,
                 configs=[{"opt": "no-such-rung"}])
        _submit(j, "j00002", [CFG_A])
    state = replay_service_journal(path)
    assert "jBAD" not in state.jobs
    assert "j00002" in state.jobs


def test_job_view_counts_provenance():
    job = Job(job_id="j1", tenant="t", priority=0.0, configs=(CFG_A, CFG_B))
    job.completed = {CFG_A.key(): "d1", CFG_B.key(): "d2"}
    job.sources = {CFG_A.key(): "store", CFG_B.key(): "computed"}
    view = job.view()
    assert view["from_store"] == 1
    assert view["recomputed"] == 1
    assert view["completed"] == 2
