"""Priority scheduling and starvation aging."""

from repro.service.scheduler import PriorityScheduler


def test_higher_priority_pops_first():
    s = PriorityScheduler()
    s.push("low", 0.0, now=0.0)
    s.push("high", 5.0, now=0.0)
    assert s.pop(now=0.0) == "high"
    assert s.pop(now=0.0) == "low"
    assert s.pop(now=0.0) is None


def test_equal_priority_is_fifo():
    s = PriorityScheduler()
    s.push("first", 1.0, now=0.0)
    s.push("second", 1.0, now=0.0)
    assert s.pop(now=0.0) == "first"
    assert s.pop(now=0.0) == "second"


def test_aging_prevents_starvation():
    s = PriorityScheduler(aging_per_s=0.1)
    s.push("patient", 0.0, now=0.0)
    s.push("vip", 1.0, now=0.0)
    assert s.pop(now=5.0) == "vip"  # young queue: priority rules
    # 20s later the patient job has aged to effective priority 2.0; a
    # freshly submitted vip (effective 1.0) can no longer jump it.
    s.push("vip2", 1.0, now=20.0)
    assert s.pop(now=20.0) == "patient"
    assert s.pop(now=20.0) == "vip2"


def test_queued_ids_in_submission_order():
    s = PriorityScheduler()
    s.push("a", 0.0, now=0.0)
    s.push("b", 9.0, now=0.0)
    assert s.queued_ids() == ["a", "b"]
    assert len(s) == 2
