"""The service chaos drills: every injected fault classifies safely."""

from repro.faults.chaos import (
    CLEAN,
    DEGRADED,
    RECOVERED,
    REJECTED,
    ChaosReport,
    StageReport,
)
from repro.service.chaos import SERVICE_FAULT_KINDS, run_service_campaign


def test_in_process_service_faults_all_classify_safely(tmp_path):
    rep = run_service_campaign(seed=0, out_dir=tmp_path,
                               include_kill=False)
    assert rep.ok
    by_kind = {st.kind: st for st in rep.stages}
    # every in-process service fault kind is drilled and classified.
    for kind in SERVICE_FAULT_KINDS:
        if kind == "service_kill":
            continue
        assert kind in by_kind, f"{kind} was not drilled"
    assert by_kind["hung_worker"].classification == RECOVERED
    assert by_kind["torn_shard"].classification == RECOVERED
    # the telemetry plane upgrades flood/storm from merely-safe to
    # *degraded*: the SLO breach was detected AND journaled.
    assert by_kind["submission_flood"].classification == DEGRADED
    assert by_kind["worker_failure_storm"].classification == DEGRADED
    assert by_kind["none"].classification == CLEAN  # dedup baseline
    # zero silent loss is the whole contract.
    assert rep.counts["silent"] == 0
    assert rep.counts["degraded"] == 2
    md = (tmp_path / "chaos-summary.md").read_text()
    assert "degraded" in md
    assert (tmp_path / "chaos-report.json").exists()


def test_flood_accounting_is_total(tmp_path):
    rep = run_service_campaign(seed=0, include_kill=False)
    flood = next(st for st in rep.stages
                 if st.kind == "submission_flood")
    assert any("accounted: True" in e for e in flood.evidence)
    assert any("rejection reasons" in e for e in flood.evidence)


def test_flood_and_storm_breaches_are_journaled(tmp_path):
    rep = run_service_campaign(seed=0, include_kill=False)
    by_kind = {st.kind: st for st in rep.stages}
    flood = by_kind["submission_flood"]
    assert any("breach journaled as slo_breach event: 1" in e
               for e in flood.evidence), flood.evidence
    storm = by_kind["worker_failure_storm"]
    assert any("completion-rate breach journaled: 1" in e
               for e in storm.evidence), storm.evidence
    assert any("metrics counted breaker cycle: True" in e
               for e in storm.evidence), storm.evidence


def test_rejected_is_a_first_class_classification():
    rep = ChaosReport(seed=0, mesh_dims=(4, 4, 4), plan_size=1)
    rep.stages.append(StageReport(name="s", kind="flood", target="",
                                  classification=REJECTED))
    assert rep.counts[REJECTED] == 1
    assert rep.ok  # rejected is a safe outcome, not a failure
    assert "rejected" in rep.to_markdown()


def test_degraded_is_a_safe_classification():
    rep = ChaosReport(seed=0, mesh_dims=(4, 4, 4), plan_size=1)
    rep.stages.append(StageReport(name="s", kind="flood", target="",
                                  classification=DEGRADED))
    assert rep.counts[DEGRADED] == 1
    assert rep.ok  # detected-and-journaled degradation is not silence
    assert "degraded" in rep.to_markdown()
