"""Admission control: token buckets, per-tenant limits, explicit reasons."""

import pytest

from repro.service.admission import AdmissionController, TokenBucket
from repro.service.chaos import StepClock


def test_bucket_burst_then_refill():
    clock = StepClock()
    bucket = TokenBucket(2.0, 1.0, clock=clock)
    assert bucket.try_take()
    assert bucket.try_take()
    assert not bucket.try_take()  # burst spent
    clock.advance(1.0)
    assert bucket.try_take()  # refilled 1 token/s


def test_bucket_never_exceeds_capacity():
    clock = StepClock()
    bucket = TokenBucket(2.0, 10.0, clock=clock)
    clock.advance(100.0)
    assert bucket.available() == 2.0


def test_bucket_rejects_nonpositive_capacity():
    with pytest.raises(ValueError, match="capacity"):
        TokenBucket(0.0, 1.0)


def _controller(clock, **kw):
    defaults = dict(tenant_burst=2.0, tenant_per_s=1.0,
                    global_burst=10.0, global_per_s=0.0,
                    max_queue_depth=4, clock=clock)
    defaults.update(kw)
    return AdmissionController(**defaults)


def test_tenant_rate_limit_has_explicit_reason():
    ctl = _controller(StepClock())
    assert ctl.admit("alice").admitted
    assert ctl.admit("alice").admitted
    decision = ctl.admit("alice")
    assert not decision.admitted
    assert "tenant rate limit" in decision.reason
    assert "alice" in decision.reason


def test_tenants_are_isolated():
    ctl = _controller(StepClock())
    for _ in range(2):
        assert ctl.admit("noisy").admitted
    assert not ctl.admit("noisy").admitted
    # the noisy neighbour has not touched bob's budget.
    assert ctl.admit("bob").admitted


def test_global_budget_rejection():
    ctl = _controller(StepClock(), tenant_burst=10.0, global_burst=1.0)
    assert ctl.admit("a").admitted
    decision = ctl.admit("b")
    assert not decision.admitted
    assert "service rate limit" in decision.reason


def test_queue_depth_bound():
    ctl = _controller(StepClock())
    decision = ctl.admit("alice", queue_depth=4)
    assert not decision.admitted
    assert "queue full" in decision.reason


def test_rejection_consumes_no_tokens():
    clock = StepClock()
    ctl = _controller(clock, tenant_burst=1.0, tenant_per_s=0.0,
                      global_burst=1.0)
    assert ctl.admit("a").admitted
    for _ in range(5):  # hammering while rejected burns nothing
        assert not ctl.admit("b").admitted
    health = ctl.health()
    assert health["tenants"]["b"] == 1.0  # b's own bucket untouched


def test_refill_recovers_admission():
    clock = StepClock()
    ctl = _controller(clock)
    ctl.admit("alice"), ctl.admit("alice")
    assert not ctl.admit("alice").admitted
    clock.advance(1.0)
    assert ctl.admit("alice").admitted
