"""The unix-socket front end: wire protocol, streaming, rejections."""

import json
import socket

import pytest

from repro.experiments.config import TINY_MESH
from repro.experiments.executor import ExecutionPlan
from repro.service import (
    ServiceClient,
    ServiceError,
    SweepServer,
    SweepService,
    wait_for_socket,
)
from repro.service.admission import AdmissionController
from repro.service.chaos import StepClock

PLAN = ExecutionPlan.ladder(mesh=TINY_MESH, vector_sizes=(16,))
CONFIGS = list(PLAN)


@pytest.fixture()
def server(tmp_path):
    service = SweepService(str(tmp_path / "svc"))
    srv = SweepServer(service, tmp_path / "svc.sock")
    srv.start()
    assert wait_for_socket(srv.socket_path, timeout_s=10.0)
    yield srv
    srv.close()


def client_for(server) -> ServiceClient:
    return ServiceClient(server.socket_path, timeout_s=60.0)


def test_submit_wait_fetch_roundtrip(server):
    client = client_for(server)
    resp = client.submit(CONFIGS[:3], tenant="alice")
    assert resp["ok"]
    view = client.wait(resp["job_id"], timeout_s=60.0)
    assert view["status"] == "done"
    assert view["completed"] == 3
    results = client.fetch(resp["job_id"])["results"]
    assert len(results) == 3
    table = client.jobs()["jobs"]
    assert [v["job_id"] for v in table] == [resp["job_id"]]


def test_stream_yields_events_then_terminal_record(server):
    client = client_for(server)
    resp = client.submit(CONFIGS[:2], tenant="alice")
    records = list(client.stream(resp["job_id"]))
    assert records[-1]["done"] is True
    assert records[-1]["job"]["status"] == "done"
    kinds = [r["event"]["kind"] for r in records if "event" in r]
    assert kinds.count("done") + kinds.count("store_hit") == 2


def test_health_over_the_wire(server):
    health = client_for(server).health()
    assert health["ok"]
    assert health["status"] == "serving"
    assert "breaker" in health and "admission" in health


def test_metrics_verb_over_the_wire(server):
    client = client_for(server)
    resp = client.submit(CONFIGS[:1], tenant="alice", trace=True)
    assert resp["ok"] and len(resp["trace_id"]) == 16
    client.wait(resp["job_id"], timeout_s=60.0)
    out = client.metrics()
    assert out["ok"]
    assert out["metrics"]["counters"][
        "service_submits_total{tenant=alice}"] == 1.0
    assert out["slo"]["alice"]["ok"] is True
    assert out["slo_policy"]["queue_wait_p95_s"] == 5.0
    # the curated view is serializable and self-consistent.
    from repro.service import stable_status

    status = stable_status(client.health(), out)
    assert status["jobs"] == {"done": 1}
    assert json.loads(json.dumps(status)) == status


def test_unknown_op_is_an_error_response(server):
    client = client_for(server)
    resp = client._request("frobnicate")
    assert not resp["ok"]
    assert "unknown op" in resp["error"]


def test_malformed_json_gets_an_error_not_a_crash(server):
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.settimeout(10.0)
    s.connect(str(server.socket_path))
    s.sendall(b"{torn garbage\n")
    resp = json.loads(s.makefile().readline())
    s.close()
    assert not resp["ok"]
    assert "bad request" in resp["error"]
    # the server survived: a healthy request still works.
    assert client_for(server).health()["ok"]


def test_bad_configs_are_rejected_per_request(server):
    client = client_for(server)
    resp = client._request("submit", configs=[], tenant="alice")
    assert not resp["ok"]
    resp = client._request("submit", configs=[{"opt": "no-such-rung"}],
                           tenant="alice")
    assert not resp["ok"]


def test_flood_rejections_cross_the_wire(tmp_path):
    clock = StepClock()
    service = SweepService(
        str(tmp_path / "svc"), clock=clock,
        admission=AdmissionController(tenant_burst=1.0, tenant_per_s=0.0,
                                      global_burst=10.0, global_per_s=0.0,
                                      clock=clock))
    srv = SweepServer(service, tmp_path / "svc.sock")
    srv.start()
    try:
        assert wait_for_socket(srv.socket_path, timeout_s=10.0)
        client = ServiceClient(srv.socket_path, timeout_s=60.0)
        assert client.submit(CONFIGS[:1], tenant="mallory")["ok"]
        resp = client.submit(CONFIGS[:1], tenant="mallory")
        assert not resp["ok"]
        assert "tenant rate limit" in resp["rejected"]
    finally:
        srv.close()


def test_client_reports_unreachable_service(tmp_path):
    client = ServiceClient(tmp_path / "nope.sock")
    with pytest.raises(ServiceError, match="cannot reach"):
        client.health()


def test_drain_finishes_queued_work_then_stops(server):
    client = client_for(server)
    resp = client.submit(CONFIGS[:1], tenant="alice")
    drain = client.drain()
    assert drain["ok"]
    # the loop finishes the queued job, notices the drained queue, and
    # stops the server -- the socket goes away, so verify in-process.
    assert server._stop.wait(30.0)
    server._loop_thread.join(timeout=30.0)
    view = server.service.poll(resp["job_id"])["job"]
    assert view["status"] == "done"
    assert view["completed"] == 1
