"""The content-addressed result store: durability, dedup, corruption."""

import json

from repro.experiments.executor import payload_digest
from repro.service.store import SHARD_WIDTH, ResultStore

PAYLOAD = {"1": {"cycles_total": 100.0, "fp_ops_vector": 5.0},
           "2": {"cycles_total": 40.0, "fp_ops_vector": 1.0}}


def test_put_get_roundtrip(tmp_path):
    store = ResultStore(tmp_path)
    digest = store.put(dict(PAYLOAD))
    got = store.get(digest)
    assert got["1"] == PAYLOAD["1"]
    assert got["__digest__"] == digest == payload_digest(PAYLOAD)


def test_objects_are_sharded_by_digest_prefix(tmp_path):
    store = ResultStore(tmp_path)
    digest = store.put(dict(PAYLOAD))
    path = store.object_path(digest)
    assert path.parent.name == digest[:SHARD_WIDTH]
    assert path.exists()


def test_second_put_is_a_dedup_hit(tmp_path):
    store = ResultStore(tmp_path)
    d1 = store.put(dict(PAYLOAD))
    d2 = store.put(dict(PAYLOAD))
    assert d1 == d2
    assert store.stats.puts == 1
    assert store.stats.dedup_hits == 1
    assert store.object_count() == 1


def test_metadata_keys_do_not_change_the_digest(tmp_path):
    store = ResultStore(tmp_path)
    annotated = {**PAYLOAD, "__validation__": {"ok": True}}
    assert store.put(annotated) == payload_digest(PAYLOAD)
    # stored object keeps only the body + its digest stamp.
    obj = json.loads(store.object_path(payload_digest(PAYLOAD)).read_text())
    assert "__validation__" not in obj


def test_solve_record_survives_the_store(tmp_path):
    # the convergence record is metadata (digest-neutral) but it must
    # come back out of the store so jobs --results can surface it.
    store = ResultStore(tmp_path)
    info = {"method": "bicgstab", "iterations": 3,
            "residual": 7.47e-09, "converged": True}
    digest = store.put({**PAYLOAD, "__solve__": info})
    assert digest == payload_digest(PAYLOAD)
    got = store.get(digest)
    assert got["__solve__"] == info


def test_torn_object_is_discarded_on_read(tmp_path):
    store = ResultStore(tmp_path)
    digest = store.put(dict(PAYLOAD))
    path = store.object_path(digest)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])  # the torn write
    assert store.get(digest) is None
    assert store.stats.corrupt_discarded == 1
    assert not path.exists()  # quarantined for recomputation


def test_bitrot_with_valid_json_fails_the_digest_check(tmp_path):
    store = ResultStore(tmp_path)
    digest = store.put(dict(PAYLOAD))
    path = store.object_path(digest)
    obj = json.loads(path.read_text())
    obj["1"]["cycles_total"] += 1.0  # parseable, plausible, wrong
    path.write_text(json.dumps(obj, sort_keys=True))
    assert store.get(digest) is None
    assert store.stats.corrupt_discarded == 1


def test_link_lookup_roundtrip(tmp_path):
    store = ResultStore(tmp_path)
    digest = store.put(dict(PAYLOAD))
    store.link("cfg-a", digest)
    assert store.digest_for("cfg-a") == digest
    assert store.lookup("cfg-a")["__digest__"] == digest
    assert store.stats.hits == 1


def test_unlinked_key_lookup_is_none(tmp_path):
    assert ResultStore(tmp_path).lookup("nope") is None


def test_corrupt_link_is_discarded(tmp_path):
    store = ResultStore(tmp_path)
    store.link("cfg-a", store.put(dict(PAYLOAD)))
    store.link_path("cfg-a").write_text("{torn")
    assert store.lookup("cfg-a") is None
    assert store.stats.corrupt_links == 1
    assert not store.link_path("cfg-a").exists()


def test_health_counts_objects_and_links(tmp_path):
    store = ResultStore(tmp_path)
    digest = store.put(dict(PAYLOAD))
    store.link("a", digest)
    store.link("b", digest)  # two configs, one object: dedup
    health = store.health()
    assert health["objects"] == 1
    assert health["links"] == 2
