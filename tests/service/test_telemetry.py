"""The telemetry plane: SLO verdicts, breach journaling, restart seed,
and the curated deterministic status view."""

import json

from repro.service.jobs import replay_service_journal
from repro.service.telemetry import (
    SLO_COMPLETION,
    SLO_QUEUE_WAIT,
    SLOPolicy,
    ServiceTelemetry,
    reject_cause,
    stable_status,
)


def _recorder():
    records = []

    def journal(event, **fields):
        records.append({"event": event, **fields})

    return records, journal


def test_verdicts_empty_until_tenants_appear():
    tel = ServiceTelemetry()
    assert tel.slo_verdicts() == {}
    assert tel.breach_count() == 0


def test_completion_rate_needs_min_events():
    tel = ServiceTelemetry(slo=SLOPolicy(min_events=3))
    records, journal = _recorder()
    # two rejections: suspicious, but below the evidence bar.
    tel.record_reject("alice", "queue full (64)")
    tel.record_reject("alice", "queue full (64)")
    v = tel.check_slos(journal)
    assert v["alice"][SLO_COMPLETION]["rate"] is None
    assert v["alice"]["ok"]
    assert records == []
    # the third makes it judgeable — and breached.
    tel.record_reject("alice", "queue full (64)")
    v = tel.check_slos(journal)
    assert v["alice"][SLO_COMPLETION] == {
        "rate": 0.0, "target_min": 0.9, "events": 3, "ok": False}
    assert [r["event"] for r in records] == ["slo_breach"]
    assert records[0]["tenant"] == "alice"
    assert records[0]["slo"] == SLO_COMPLETION


def test_breach_journaled_once_per_episode_then_again_after_recovery():
    tel = ServiceTelemetry(slo=SLOPolicy(min_events=2,
                                         completion_rate_min=0.75))
    records, journal = _recorder()
    tel.record_reject("alice", "queue full (64)")
    tel.record_reject("alice", "queue full (64)")
    tel.check_slos(journal)
    tel.check_slos(journal)  # same episode: no duplicate record
    assert len(records) == 1
    assert tel.breach_count() == 1
    # recovery: enough completions to clear the rate, episode closes.
    for _ in range(6):
        tel.record_job_done("alice", wall_s=0.1)
    v = tel.check_slos(journal)
    assert v["alice"]["ok"]
    assert tel.breach_count() == 0
    # relapse: a fresh episode journals a fresh event.
    for _ in range(25):
        tel.record_reject("alice", "queue full (64)")
    tel.check_slos(journal)
    assert len(records) == 2
    breaches = tel.registry.counter_value(
        "service_slo_breaches_total", slo=SLO_COMPLETION, tenant="alice")
    assert breaches == 2


def test_queue_wait_slo_uses_bucket_bound_estimates():
    tel = ServiceTelemetry(slo=SLOPolicy(queue_wait_p95_s=5.0))
    for _ in range(20):
        tel.record_queue_wait("alice", 0.01)  # idle service: first bucket
    v = tel.slo_verdicts()["alice"][SLO_QUEUE_WAIT]
    assert v == {"p50_s": 0.5, "p95_s": 0.5, "target_p95_s": 5.0,
                 "samples": 20, "ok": True}
    # a stall: p95 climbs past the target.
    for _ in range(200):
        tel.record_queue_wait("alice", 45.0)
    v = tel.slo_verdicts()["alice"][SLO_QUEUE_WAIT]
    assert v["p95_s"] == 60.0 and not v["ok"]


def test_breaker_transitions_and_causes_are_counted():
    tel = ServiceTelemetry()
    tel.record_breaker_transition("closed", "open")
    tel.record_breaker_transition("open", "half_open")
    assert tel.registry.counter_value(
        "breaker_transitions_total", **{"from": "closed", "to": "open"}) == 1
    tel.record_reject("a", "tenant rate limit exceeded")
    tel.record_reject("a", "circuit breaker open (cooling down)")
    assert tel.registry.counter_value(
        "service_rejects_by_cause_total", cause="tenant_rate") == 1
    assert tel.registry.counter_value(
        "service_rejects_by_cause_total", cause="breaker") == 1


def test_reject_cause_vocabulary():
    assert reject_cause("queue full (64 jobs)") == "queue_full"
    assert reject_cause("tenant rate limit exceeded") == "tenant_rate"
    assert reject_cause("service rate limit exceeded") == "global_rate"
    assert reject_cause("circuit breaker open") == "breaker"
    assert reject_cause("service draining") == "draining"
    assert reject_cause("empty submission") == "empty"
    assert reject_cause("cosmic rays") == "other"


def test_seed_restores_counters_and_breach_set(tmp_path):
    """kill -9 continuity: journal fold -> seed() -> same counters."""
    from repro.experiments.config import RunConfig
    from repro.service.jobs import ServiceJournal

    cfg = RunConfig(opt="vanilla", vector_size=16, mesh_dims=(4, 4, 4))
    journal = ServiceJournal(tmp_path / "service.journal")
    journal.record("service_start", jobs=1)
    journal.record("submit", job_id="j1", tenant="alice", priority=0,
                   configs=[cfg.to_dict()], trace_id="")
    journal.record("rejected", tenant="mallory", reason="tenant rate limit")
    journal.record("rejected", tenant="mallory", reason="tenant rate limit")
    journal.record("rejected", tenant="mallory", reason="tenant rate limit")
    journal.record("slo_breach", tenant="mallory", slo=SLO_COMPLETION,
                   value=0.0, target=0.9)
    journal.record("job_start", job_id="j1")
    journal.record("config_done", job_id="j1", key=cfg.key(), digest="d",
                   source="computed")
    journal.record("job_done", job_id="j1")
    journal.close()

    state = replay_service_journal(tmp_path / "service.journal")
    tel = ServiceTelemetry()
    tel.seed(state)
    reg = tel.registry
    assert reg.counter_value("service_submits_total", tenant="alice") == 1
    assert reg.counter_value("service_rejects_total", tenant="mallory") == 3
    assert reg.counter_value("service_jobs_done_total", tenant="alice") == 1
    assert reg.counter_value("service_configs_done_total",
                             source="computed") == 1
    assert reg.counter_value("service_slo_breaches_total",
                             slo=SLO_COMPLETION, tenant="mallory") == 1
    # the open episode survived: no duplicate journaling on the next check.
    records, rec = _recorder()
    tel.check_slos(rec)
    assert records == []
    assert tel.breach_count() == 1


def test_stable_status_filters_wall_clock_series():
    health = {"status": "serving", "queue_depth": 0,
              "jobs": {"done": 2}, "rejected_total": 1,
              "breaker": {"state": "closed", "trips": 0, "cooldown_s": 5.0},
              "store": {"objects": 2, "links": 4, "puts": 2,
                        "dedup_hits": 2, "hits": 0, "corrupt": 0}}
    metrics = {
        "metrics": {
            "counters": {
                "service_submits_total{tenant=alice}": 2.0,
                "store_puts_total": 2.0,
                "executor_events_total{kind=done}": 7.0,  # unstable: jobs=N
                "admission_decisions_total{outcome=admitted}": 2.0,
            },
            "gauges": {"service_queue_depth": 0.0},
            "histograms": {"service_job_wall_seconds": {"sum": 1.23}},
        },
        "slo": {"alice": {"ok": True}},
    }
    status = stable_status(health, metrics)
    assert set(status["counters"]) == {
        "service_submits_total{tenant=alice}", "store_puts_total"}
    assert "histograms" not in json.dumps(status)
    assert status["breaker"] == {"state": "closed", "trips": 0}
    assert status["slo"] == {"alice": {"ok": True}}
    # deterministic serialization: the CI diff contract.
    assert (json.dumps(status, sort_keys=True)
            == json.dumps(stable_status(health, metrics), sort_keys=True))


def test_service_metrics_verb_and_trace_export(tmp_path):
    """End-to-end through SweepService: metrics verb, SLO plane, trace
    propagation into the store payload and the exported timeline."""
    from repro.experiments.config import RunConfig
    from repro.service.core import SweepService

    svc = SweepService(str(tmp_path / "state"))
    cfg = RunConfig(opt="vanilla", vector_size=16, mesh_dims=(4, 4, 4))
    resp = svc.submit([cfg], tenant="alice", trace_id="feedbeef12345678")
    assert resp["ok"] and resp["trace_id"] == "feedbeef12345678"
    svc.process_next()
    out = svc.metrics()
    svc.close()
    assert out["ok"]
    assert out["metrics"]["counters"][
        "service_submits_total{tenant=alice}"] == 1.0
    assert out["slo"]["alice"]["ok"]
    assert out["slo_policy"] == SLOPolicy().to_dict()
    # the trace id reached the store payload (digest-neutral __ key)...
    digest = svc.store.digest_for(cfg.key())
    body = json.loads(svc.store.object_path(digest).read_text())
    assert body["__trace__"] == "feedbeef12345678"
    # ...and the exported timeline has the whole story under one id.
    doc = json.loads(svc.trace_export_path(resp["job_id"]).read_text())
    assert doc["otherData"]["trace_id"] == "feedbeef12345678"
    names = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"}
    assert "client-submit" in names and "queue-wait" in names
    assert any(n.startswith("worker-execute ") for n in names)
    assert any(n.startswith("store-write ") for n in names)
    ids = {e["args"]["trace"] for e in doc["traceEvents"]
           if e.get("ph") == "X" and "trace" in e.get("args", {})}
    assert ids == {"feedbeef12345678"}
