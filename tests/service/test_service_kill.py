"""The kill-mid-sweep drill against a real ``repro serve`` process.

SIGKILL is the harshest failure the service promises to survive: no
atexit hooks, no signal handlers, the process is simply gone.  The
restarted service must resume the in-flight job with every journaled
completion served from the store — zero silent loss, zero recomputation
of finished work."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.config import TINY_MESH
from repro.experiments.executor import ExecutionPlan
from repro.service import ServiceClient, SweepService, wait_for_socket

PLAN = ExecutionPlan.ladder(mesh=TINY_MESH, vector_sizes=(16,))
CONFIGS = list(PLAN)


@pytest.mark.slow
def test_sigkilled_service_resumes_without_losing_results(tmp_path):
    state = tmp_path / "svc"
    sock = state / "service.sock"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--state-dir", str(state),
         "--socket", str(sock), "--worker-delay", "0.2"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    pre_kill = 0
    try:
        assert wait_for_socket(sock, timeout_s=20.0)
        client = ServiceClient(sock, timeout_s=30.0)
        resp = client.submit(CONFIGS, tenant="alice")
        assert resp["ok"]
        job_id = resp["job_id"]
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            view = client.poll(job_id).get("job", {})
            pre_kill = int(view.get("completed", 0))
            if pre_kill >= 2:
                break
            time.sleep(0.05)
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30.0)
    assert 1 <= pre_kill < len(CONFIGS), "kill must land mid-sweep"

    svc = SweepService(str(state))
    assert svc.resumed_jobs == 1
    assert svc.process_next(wait_s=1.0) == job_id
    view = svc.poll(job_id)["job"]
    svc.close()
    assert view["status"] == "done"
    assert view["completed"] == len(CONFIGS)
    assert view["failed"] == {}
    # every completion journaled before the SIGKILL is served from the
    # store, never recomputed.
    assert view["from_store"] >= pre_kill
