"""SweepService end-to-end, in-process: lifecycle, dedup, degradation."""

import pytest

from repro.experiments.config import TINY_MESH
from repro.experiments.executor import ExecutionPlan, payload_digest
from repro.faults.injector import AlwaysCrashWorker, InterruptingWorker
from repro.service import SweepService
from repro.service.admission import AdmissionController
from repro.service.breaker import CircuitBreaker
from repro.service.chaos import StepClock

PLAN = ExecutionPlan.ladder(mesh=TINY_MESH, vector_sizes=(16,))
CONFIGS = list(PLAN)


def test_submit_process_poll_lifecycle(tmp_path):
    svc = SweepService(str(tmp_path / "svc"))
    resp = svc.submit(CONFIGS, tenant="alice")
    assert resp["ok"]
    assert svc.poll(resp["job_id"])["job"]["status"] == "queued"
    assert svc.process_next() == resp["job_id"]
    view = svc.poll(resp["job_id"])["job"]
    assert view["status"] == "done"
    assert view["completed"] == view["total"] == len(CONFIGS)
    assert view["recomputed"] == len(CONFIGS)
    svc.close()


def test_cross_tenant_dedup_through_the_store(tmp_path):
    svc = SweepService(str(tmp_path / "svc"))
    first = svc.submit(CONFIGS, tenant="alice")
    svc.process_next()
    second = svc.submit(CONFIGS, tenant="bob")
    svc.process_next()
    view = svc.poll(second["job_id"])["job"]
    # bob's identical sweep never re-simulates: all served by digest.
    assert view["from_store"] == len(CONFIGS)
    assert view["recomputed"] == 0
    assert svc.store.stats.hits == len(CONFIGS)
    alice = svc.poll(first["job_id"])["job"]
    assert alice["recomputed"] == len(CONFIGS)
    svc.close()


def test_fetch_serves_digest_verified_payloads(tmp_path):
    svc = SweepService(str(tmp_path / "svc"))
    resp = svc.submit(CONFIGS[:2], tenant="alice")
    svc.process_next()
    results = svc.fetch(resp["job_id"])["results"]
    assert set(results) == {c.key() for c in CONFIGS[:2]}
    for payload in results.values():
        assert payload_digest(payload) == payload["__digest__"]
    svc.close()


def test_empty_submission_is_rejected_not_dropped(tmp_path):
    svc = SweepService(str(tmp_path / "svc"))
    resp = svc.submit([], tenant="alice")
    assert not resp["ok"]
    assert "empty submission" in resp["rejected"]
    assert svc.rejected_total == 1
    svc.close()


def test_draining_service_rejects_new_work(tmp_path):
    svc = SweepService(str(tmp_path / "svc"))
    svc.submit(CONFIGS[:1], tenant="alice")
    svc.drain()
    resp = svc.submit(CONFIGS[:1], tenant="bob")
    assert not resp["ok"]
    assert "draining" in resp["rejected"]
    assert not svc.drained()  # queued work still owed
    svc.process_next()
    assert svc.drained()
    svc.close()


def test_unknown_job_is_an_explicit_error(tmp_path):
    svc = SweepService(str(tmp_path / "svc"))
    assert not svc.poll("j99999")["ok"]
    assert not svc.fetch("j99999")["ok"]
    assert not svc.stream("j99999")["ok"]
    svc.close()


def test_priority_orders_processing(tmp_path):
    svc = SweepService(str(tmp_path / "svc"))
    low = svc.submit(CONFIGS[:1], tenant="a", priority=0)
    high = svc.submit(CONFIGS[1:2], tenant="b", priority=5)
    assert svc.process_next() == high["job_id"]
    assert svc.process_next() == low["job_id"]
    svc.close()


def test_admission_rejection_is_explicit_and_journaled(tmp_path):
    clock = StepClock()
    admission = AdmissionController(tenant_burst=1.0, tenant_per_s=0.0,
                                    global_burst=10.0, global_per_s=0.0,
                                    clock=clock)
    svc = SweepService(str(tmp_path / "svc"), admission=admission,
                       clock=clock)
    assert svc.submit(CONFIGS[:1], tenant="alice")["ok"]
    resp = svc.submit(CONFIGS[:1], tenant="alice")
    assert not resp["ok"]
    assert "tenant rate limit" in resp["rejected"]
    svc.close()
    # the rejection is durable: a restarted service still counts it.
    svc2 = SweepService(str(tmp_path / "svc"))
    assert svc2.rejected_total == 1
    svc2.close()


def test_failing_job_trips_the_breaker(tmp_path):
    clock = StepClock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown_s=30.0,
                             clock=clock)
    svc = SweepService(str(tmp_path / "svc"), worker=AlwaysCrashWorker(),
                       retries=0, backoff_s=0.0, breaker=breaker,
                       clock=clock)
    resp = svc.submit(CONFIGS[:1], tenant="alice")
    svc.process_next()
    view = svc.poll(resp["job_id"])["job"]
    assert view["status"] == "failed"
    assert view["failed"]
    refused = svc.submit(CONFIGS[:1], tenant="alice")
    assert not refused["ok"]
    assert "circuit breaker" in refused["rejected"]
    assert svc.health()["breaker"]["state"] == "open"
    svc.close()


def test_kill_mid_job_resumes_from_the_store(tmp_path):
    state = tmp_path / "svc"
    stop_after = 2
    svc = SweepService(str(state), worker=InterruptingWorker(stop_after))
    resp = svc.submit(CONFIGS, tenant="alice")
    with pytest.raises(KeyboardInterrupt):  # the "kill" lands mid-sweep
        svc.process_next()
    svc.close()

    svc2 = SweepService(str(state))
    assert svc2.resumed_jobs == 1
    assert svc2.process_next() == resp["job_id"]
    view = svc2.poll(resp["job_id"])["job"]
    assert view["status"] == "done"
    assert view["completed"] == len(CONFIGS)
    # everything journaled before the kill is served, not recomputed.
    assert view["from_store"] >= stop_after
    assert view["recomputed"] <= len(CONFIGS) - stop_after
    svc2.close()


def test_health_document_shape(tmp_path):
    svc = SweepService(str(tmp_path / "svc"))
    svc.submit(CONFIGS[:1], tenant="alice")
    svc.process_next()
    health = svc.health()
    assert health["status"] == "serving"
    assert health["jobs"] == {"done": 1}
    assert health["queue_depth"] == 0
    assert set(health["breaker"]) == {"state", "trips",
                                      "consecutive_failures"}
    assert health["store"]["objects"] == 1
    svc.close()
