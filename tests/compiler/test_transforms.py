"""The transformation passes: rewrites, legality, pipeline plumbing."""

import pytest

from repro.cfd.csr import build_pattern
from repro.cfd.kernel_context import MiniAppContext
from repro.cfd.mesh import box_mesh
from repro.cfd.phases import build_baseline_kernels
from repro.compiler.ir import Loop, walk_loops
from repro.compiler.transforms import (
    OPT_PASSES,
    PASS_REGISTRY,
    ConstantTripCount,
    LoopFission,
    LoopInterchange,
    PassPipeline,
    PipelineError,
    opt_for_passes,
    pipeline_for_opt,
    pipeline_from_names,
)

VS = 16


@pytest.fixture(scope="module")
def kernels():
    mesh = box_mesh(4, 4, 4)
    ctx = MiniAppContext(mesh, VS, nnz=build_pattern(mesh).nnz)
    return {k.phase: k for k in build_baseline_kernels(ctx.arrays, VS)}


# ---------------------------------------------------------------------------
# ConstantTripCount (VEC2)
# ---------------------------------------------------------------------------


def test_const_trip_count_promotes_phase2_dummy(kernels):
    out, remark = ConstantTripCount().run(kernels[2])
    assert remark.status == "applied"
    assert "VECTOR_SIZE" in remark.reason
    exts = [lp.extent for lp in walk_loops(out.body) if lp.var == "ivect"]
    assert exts and all(e.kind == "param" and e.name == "VECTOR_SIZE"
                        for e in exts)
    assert all(e.value == VS for e in exts)


def test_const_trip_count_not_applicable_without_dummy(kernels):
    out, remark = ConstantTripCount().run(kernels[3])
    assert remark.status == "not-applicable"
    assert out == kernels[3]  # unchanged, exact dataclass equality


# ---------------------------------------------------------------------------
# LoopInterchange (IVEC2)
# ---------------------------------------------------------------------------


def test_interchange_sinks_ivect_innermost(kernels):
    promoted, _ = ConstantTripCount().run(kernels[2])
    out, remark = LoopInterchange().run(promoted)
    assert remark.status == "applied"
    for lp in walk_loops(out.body):
        if lp.var == "ivect":
            assert not any(isinstance(s, Loop) for s in lp.body), \
                "ivect loop still encloses another loop"
    # sinking through the 3-statement inode body distributes it.
    assert sum(1 for lp in walk_loops(out.body) if lp.var == "ivect") == 3


def test_interchange_illegal_without_const_bound(kernels):
    out, remark = LoopInterchange().run(kernels[2])
    assert remark.status == "illegal"
    assert any(b.code == "T1-runtime-trip-count" for b in remark.blockers)
    assert out == kernels[2]


def test_interchange_illegal_on_control_flow(kernels):
    out, remark = LoopInterchange().run(kernels[8])
    assert remark.status == "illegal"
    assert any(b.code == "T2-control-flow" for b in remark.blockers)
    assert out == kernels[8]


def test_interchange_not_applicable_when_already_innermost(kernels):
    _, remark = LoopInterchange().run(kernels[4])
    assert remark.status == "not-applicable"


# ---------------------------------------------------------------------------
# LoopFission (VEC1)
# ---------------------------------------------------------------------------


def test_fission_splits_phase1_after_last_if(kernels):
    out, remark = LoopFission().run(kernels[1])
    assert remark.status == "applied"
    tops = [s for s in out.body if isinstance(s, Loop) and s.var == "ivect"]
    assert len(tops) == 2
    head, tail = tops
    from repro.compiler.transforms.base import contains_control_flow

    assert contains_control_flow(head.body)
    assert not contains_control_flow(tail.body)


def test_fission_not_applicable_on_straight_line_kernels(kernels):
    for phase in (3, 4, 6, 7):
        out, remark = LoopFission().run(kernels[phase])
        assert remark.status == "not-applicable"
        assert out == kernels[phase]


# ---------------------------------------------------------------------------
# Pipeline plumbing
# ---------------------------------------------------------------------------


def test_interchange_requires_const_trip_count():
    with pytest.raises(PipelineError) as exc:
        PassPipeline([LoopInterchange()])
    msg = str(exc.value)
    assert "loop-interchange" in msg and "const-trip-count" in msg


def test_pipeline_from_names_rejects_unknown():
    with pytest.raises(PipelineError, match="unknown pass"):
        pipeline_from_names(("warp-drive",))


def test_opt_rung_pass_lists_are_cumulative():
    assert OPT_PASSES["scalar"] == OPT_PASSES["vanilla"] == ()
    assert OPT_PASSES["vec2"] == ("const-trip-count",)
    assert OPT_PASSES["ivec2"] == ("const-trip-count", "loop-interchange")
    assert OPT_PASSES["vec1"] == ("const-trip-count", "loop-interchange",
                                  "loop-fission")
    for opt, names in OPT_PASSES.items():
        assert pipeline_for_opt(opt).pass_names == names


def test_pipeline_for_opt_rejects_unknown():
    with pytest.raises(ValueError, match="unknown optimization level"):
        pipeline_for_opt("turbo")


def test_opt_for_passes_roundtrip():
    for opt in ("vanilla", "vec2", "ivec2", "vec1"):
        assert opt_for_passes(OPT_PASSES[opt]) == opt
    assert opt_for_passes(("loop-fission",)) is None


def test_registry_names_match_classes():
    assert set(PASS_REGISTRY) == {"const-trip-count", "loop-interchange",
                                  "loop-fission", "strip-mine"}
    for name, cls in PASS_REGISTRY.items():
        assert cls.name == name


def test_prefixes_shortest_first():
    pipe = pipeline_for_opt("vec1")
    names = [p.pass_names for p in pipe.prefixes()]
    assert names == [(), ("const-trip-count",),
                     ("const-trip-count", "loop-interchange"),
                     ("const-trip-count", "loop-interchange",
                      "loop-fission")]


def test_run_all_collects_remarks_per_kernel(kernels):
    pipe = pipeline_for_opt("vec1")
    out, remarks = pipe.run_all([kernels[p] for p in sorted(kernels)])
    assert len(out) == 8
    assert len(remarks) == 8 * 3
    applied = [(r.phase, r.pass_name) for r in remarks
               if r.status == "applied"]
    assert applied == [(1, "loop-fission"), (2, "const-trip-count"),
                       (2, "loop-interchange")]


def test_passes_never_mutate_input(kernels):
    before = {p: k for p, k in kernels.items()}
    pipeline_for_opt("vec1").run_all(list(kernels.values()))
    assert kernels == before
