"""Tests for the loop-nest IR data model."""

import pytest
from hypothesis import given, strategies as st

from repro.compiler.ir import (
    Affine,
    Array,
    Assign,
    BinOp,
    Cond,
    Const,
    Extent,
    If,
    Indirect,
    Kernel,
    Load,
    Loop,
    Ref,
    Unary,
    const_idx,
    innermost_loops,
    var,
    walk_loops,
)


def test_array_strides_column_major():
    a = Array("a", (4, 3, 2))
    assert a.strides_elems == (1, 4, 12)
    assert a.size == 24
    assert a.nbytes == 192


def test_array_validation():
    with pytest.raises(ValueError):
        Array("bad", (0, 3))
    with pytest.raises(ValueError):
        Array("bad", (2,), dtype="f4")
    with pytest.raises(ValueError):
        Array("bad", (2,), scope="shared")


def test_affine_helpers():
    e = Affine((("i", 2), ("j", 1)), const=5)
    assert e.coef("i") == 2
    assert e.coef("k") == 0
    assert e.vars() == {"i", "j"}
    assert e.shifted(3).const == 8
    with pytest.raises(ValueError):
        Affine((("i", 1), ("i", 2)))


def test_var_and_const_idx():
    assert var("i").coef("i") == 1
    assert var("i", 3).coef("i") == 3
    assert const_idx(7).const == 7 and const_idx(7).vars() == set()


def test_ref_stride_along():
    a = Array("a", (16, 8, 3))
    r = Ref(a, (var("i"), var("j"), const_idx(1)))
    assert r.stride_along("i") == 1
    assert r.stride_along("j") == 16
    assert r.stride_along("k") == 0
    # combined: a(i, i, 0) has stride 1 + 16 along i
    r2 = Ref(a, (var("i"), var("i"), const_idx(0)))
    assert r2.stride_along("i") == 17


def test_ref_indirect_stride_is_none():
    idx = Array("idx", (16,), dtype="i8")
    a = Array("a", (100,))
    gather = Ref(a, (Indirect(idx, (var("i"),)),))
    assert gather.stride_along("i") is None
    assert gather.stride_along("j") == 0
    assert gather.has_indirect()


def test_indirect_requires_integer_array():
    f = Array("f", (16,))
    with pytest.raises(ValueError):
        Indirect(f, (var("i"),))


def test_ref_rank_mismatch():
    a = Array("a", (4, 4))
    with pytest.raises(ValueError):
        Ref(a, (var("i"),))


def test_extent_validation():
    assert Extent(8).compile_time_known
    assert Extent(8, "param", "VS").compile_time_known
    assert not Extent(8, "runtime_dummy", "VECTOR_DIM").compile_time_known
    with pytest.raises(ValueError):
        Extent(8, "maybe")
    with pytest.raises(ValueError):
        Extent(0)


def test_binop_unary_validation():
    a = Const(1.0)
    with pytest.raises(ValueError):
        BinOp("pow", a, a)
    with pytest.raises(ValueError):
        Unary("exp", a)
    with pytest.raises(ValueError):
        Cond("like", a, a)


def _loop(varname, n, body, vectorized=False):
    return Loop(varname, Extent(n), tuple(body), vectorized=vectorized)


def test_walk_and_innermost_loops():
    a = Array("a", (8, 8))
    inner = _loop("j", 8, [Assign(Ref(a, (var("i"), var("j"))), Const(0.0))])
    outer = _loop("i", 8, [inner])
    loops = list(walk_loops((outer,)))
    assert [l.var for l in loops] == ["i", "j"]
    assert [l.var for l in innermost_loops((outer,))] == ["j"]


def test_innermost_sees_through_if():
    a = Array("a", (8,))
    guarded = If(Cond("ne", Const(1.0), Const(0.0)),
                 (_loop("j", 8, [Assign(Ref(a, (var("j"),)), Const(0.0))]),))
    outer = _loop("i", 4, [guarded])
    # the j loop nests inside an If inside i: i is not innermost
    assert [l.var for l in innermost_loops((outer,))] == ["j"]


def test_kernel_arrays_collects_indirect_targets():
    idx = Array("idx", (8,), dtype="i8")
    src = Array("src", (100,))
    dst = Array("dst", (8,))
    k = Kernel("k", 1, (
        _loop("i", 8, [
            Assign(Ref(dst, (var("i"),)),
                   Load(Ref(src, (Indirect(idx, (var("i"),)),)))),
        ]),
    ))
    assert set(k.arrays()) == {"idx", "src", "dst"}


def test_kernel_arrays_conflicting_definition_raises():
    a1 = Array("a", (8,))
    a2 = Array("a", (9,))
    k = Kernel("k", 1, (
        _loop("i", 8, [
            Assign(Ref(a1, (var("i"),)), Load(Ref(a2, (var("i"),)))),
        ]),
    ))
    with pytest.raises(ValueError, match="conflicting"):
        k.arrays()


@given(st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=4))
def test_strides_product_property(shape):
    """stride[k] * shape[k] == stride[k+1]; last stride * dim == size."""
    a = Array("a", tuple(shape))
    s = a.strides_elems
    for k in range(len(shape) - 1):
        assert s[k] * shape[k] == s[k + 1]
    assert s[-1] * shape[-1] == a.size
