"""Tests for the reference IR interpreter."""

import numpy as np
import pytest

from repro.compiler.interpreter import run_kernel
from repro.compiler.ir import (
    Array,
    Assign,
    BinOp,
    Cond,
    Const,
    Extent,
    If,
    Indirect,
    Kernel,
    Load,
    Loop,
    Param,
    Ref,
    Unary,
    const_idx,
    var,
)
from repro.compiler.program import KernelInstance

A = Array("a", (8,))
B = Array("b", (8,))


def make_instance(**arrays) -> KernelInstance:
    inst = KernelInstance()
    for name, data in arrays.items():
        data = np.asarray(data)
        dtype = "i8" if data.dtype.kind == "i" else "f8"
        inst.bind(Array(name, data.shape, dtype), data)
    return inst


def loop(body, n=8):
    return Loop("i", Extent(n), tuple(body))


def test_simple_copy():
    inst = make_instance(a=np.zeros(8), b=np.arange(8.0))
    run_kernel(Kernel("k", 1, (loop([Assign(Ref(A, (var("i"),)), Load(Ref(B, (var("i"),))))]),)), inst)
    np.testing.assert_array_equal(inst.data("a"), np.arange(8.0))


def test_arithmetic_and_params():
    inst = make_instance(a=np.zeros(8), b=np.arange(8.0))
    expr = BinOp("add", BinOp("mul", Param("alpha"), Load(Ref(B, (var("i"),)))),
                 Const(1.0))
    run_kernel(Kernel("k", 1, (loop([Assign(Ref(A, (var("i"),)), expr)]),)), inst,
               params={"alpha": 2.0})
    np.testing.assert_allclose(inst.data("a"), 2.0 * np.arange(8.0) + 1.0)


def test_missing_param_raises():
    inst = make_instance(a=np.zeros(8))
    k = Kernel("k", 1, (loop([Assign(Ref(A, (var("i"),)), Param("nope"))]),))
    with pytest.raises(KeyError, match="nope"):
        run_kernel(k, inst)


def test_kernel_default_params_used():
    inst = make_instance(a=np.zeros(8))
    k = Kernel("k", 1, (loop([Assign(Ref(A, (var("i"),)), Param("c"))]),),
               params=(("c", 3.5),))
    run_kernel(k, inst)
    assert inst.data("a")[0] == 3.5


def test_accumulate():
    inst = make_instance(a=np.ones(8), b=np.arange(8.0))
    run_kernel(Kernel("k", 1, (
        loop([Assign(Ref(A, (var("i"),)), Load(Ref(B, (var("i"),))), accumulate=True)]),
    )), inst)
    np.testing.assert_allclose(inst.data("a"), 1.0 + np.arange(8.0))


def test_gather_through_index_array():
    idx = Array("idx", (8,), dtype="i8")
    g = Array("g", (20,))
    inst = make_instance(a=np.zeros(8), idx=np.array([3, 1, 4, 1, 5, 9, 2, 6]),
                         g=np.arange(20.0) * 10)
    run_kernel(Kernel("k", 1, (
        loop([Assign(Ref(A, (var("i"),)),
                     Load(Ref(g, (Indirect(idx, (var("i"),)),))))]),
    )), inst)
    np.testing.assert_allclose(inst.data("a"), [30, 10, 40, 10, 50, 90, 20, 60])


def test_if_condition_evaluated_for_real():
    inst = make_instance(a=np.zeros(8), b=np.array([0.0, 1, 0, 1, 1, 0, 0, 1]))
    guarded = If(Cond("gt", Load(Ref(B, (var("i"),))), Const(0.5)),
                 (Assign(Ref(A, (var("i"),)), Const(7.0)),))
    run_kernel(Kernel("k", 1, (loop([guarded]),)), inst)
    np.testing.assert_array_equal(inst.data("a"),
                                  [0, 7, 0, 7, 7, 0, 0, 7])


def test_nested_loops_and_unary():
    m = Array("m", (4, 3))
    inst = make_instance(m=np.zeros((4, 3)))
    body = Loop("i", Extent(4), (
        Loop("j", Extent(3), (
            Assign(Ref(m, (var("i"), var("j"))),
                   Unary("sqrt", BinOp("mul", Const(4.0), Const(4.0)))),
        )),
    ))
    run_kernel(Kernel("k", 1, (body,)), inst)
    np.testing.assert_allclose(inst.data("m"), 4.0)


def test_index_consts_offset_global_rows():
    g = Array("g", (20,))
    inst = make_instance(a=np.zeros(8), g=np.arange(20.0))
    inst.index_consts["chunk0"] = 10
    from repro.compiler.ir import Affine

    elem = Affine((("i", 1), ("chunk0", 1)))
    run_kernel(Kernel("k", 1, (
        loop([Assign(Ref(A, (var("i"),)), Load(Ref(g, (elem,))))]),
    )), inst)
    np.testing.assert_allclose(inst.data("a"), np.arange(10.0, 18.0))


def test_min_max_abs_neg():
    inst = make_instance(a=np.zeros(8), b=np.arange(-4.0, 4.0))
    expr = BinOp("max", Unary("abs", Load(Ref(B, (var("i"),)))), Const(2.0))
    run_kernel(Kernel("k", 1, (loop([Assign(Ref(A, (var("i"),)), expr)]),)), inst)
    np.testing.assert_allclose(inst.data("a"), np.maximum(np.abs(np.arange(-4.0, 4.0)), 2.0))
