"""Tests for the vectorizer: cost model, decisions, remarks."""

from hypothesis import given, settings, strategies as st

from repro.compiler.flags import PAPER_FLAGS, SCALAR_FLAGS
from repro.compiler.ir import (
    Array,
    Assign,
    BinOp,
    Cond,
    Const,
    Extent,
    If,
    Kernel,
    Load,
    Loop,
    Ref,
    var,
    walk_loops,
)
from repro.compiler.vectorizer import (
    OpMix,
    body_cost,
    estimate_speedup,
    expr_op_mix,
    vectorize_kernel,
)

A = Array("a", (512,))
B = Array("b", (512,))
C_ = Array("c", (512,))


def L(arr):
    return Load(Ref(arr, (var("i"),)))


def loop(body, n=256, kind="param"):
    return Loop("i", Extent(n, kind, "VS"), tuple(body))


def kernel(body):
    return Kernel("k", 1, tuple(body))


# -- op mix / FMA contraction -------------------------------------------------


def test_fma_contraction_left():
    # a*b + c -> one FMA
    e = BinOp("add", BinOp("mul", L(A), L(B)), L(C_))
    assert expr_op_mix(e, PAPER_FLAGS) == OpMix(fma=1, plain=0, long=0)


def test_fma_contraction_right():
    e = BinOp("add", L(C_), BinOp("mul", L(A), L(B)))
    assert expr_op_mix(e, PAPER_FLAGS) == OpMix(fma=1, plain=0, long=0)


def test_fms_contraction():
    e = BinOp("sub", BinOp("mul", L(A), L(B)), L(C_))
    assert expr_op_mix(e, PAPER_FLAGS).fma == 1


def test_no_contraction_without_flag():
    e = BinOp("add", BinOp("mul", L(A), L(B)), L(C_))
    mix = expr_op_mix(e, PAPER_FLAGS.with_(ffp_contract_fast=False))
    assert mix == OpMix(fma=0, plain=2, long=0)


def test_division_and_sqrt_are_long():
    from repro.compiler.ir import Unary

    e = BinOp("div", L(A), L(B))
    assert expr_op_mix(e, PAPER_FLAGS).long == 1
    assert expr_op_mix(Unary("sqrt", L(A)), PAPER_FLAGS).long == 1


def test_chained_fsum_contracts_every_term_after_first():
    # m1 + m2 + m3 (left fold) -> m1 stays a mul, 2 FMAs
    terms = [BinOp("mul", L(A), L(B)) for _ in range(3)]
    e = BinOp("add", BinOp("add", terms[0], terms[1]), terms[2])
    mix = expr_op_mix(e, PAPER_FLAGS)
    assert mix.fma == 2 and mix.plain == 1
    assert mix.flops == 2 * 2 + 1


# -- body cost ----------------------------------------------------------------


def test_body_cost_counts_patterns():
    M = Array("m", (512, 4))
    from repro.compiler.ir import Indirect, const_idx

    IDX = Array("idx", (512,), dtype="i8")
    G = Array("g", (9999,))
    stmt = Assign(
        Ref(A, (var("i"),)),
        BinOp("add",
              Load(Ref(M, (const_idx(1), var("i")))),        # strided load
              Load(Ref(G, (Indirect(IDX, (var("i"),)),)))),   # gather
    )
    cost = body_cost(loop([stmt]), PAPER_FLAGS)
    assert cost.strided_loads == 1
    assert cost.indexed_loads == 1
    assert cost.unit_loads == 1  # the idx array itself is unit-stride
    assert cost.unit_stores == 1
    assert cost.fp_ops == 1


def test_accumulate_adds_load_and_op():
    stmt = Assign(Ref(A, (var("i"),)), L(B), accumulate=True)
    cost = body_cost(loop([stmt]), PAPER_FLAGS)
    assert cost.unit_loads == 2  # b + the read-modify-write of a
    assert cost.fp_ops == 1


# -- speed-up estimates --------------------------------------------------------


def test_estimate_grows_with_trip_count():
    stmt = Assign(Ref(A, (var("i"),)),
                  BinOp("add", BinOp("mul", L(B), L(C_)), L(A)))
    est16 = estimate_speedup(loop([stmt], n=16), PAPER_FLAGS)
    est256 = estimate_speedup(loop([stmt], n=256), PAPER_FLAGS)
    assert est256 > est16 > 0


@settings(deadline=None, max_examples=30)
@given(st.integers(min_value=1, max_value=1024))
def test_estimate_positive_and_finite(trip):
    stmt = Assign(Ref(A, (var("i"),)), L(B))
    est = estimate_speedup(Loop("i", Extent(trip), (stmt,)), PAPER_FLAGS)
    assert est > 0 and est < 1000


# -- decisions -----------------------------------------------------------------


def vec_statuses(kern, flags=PAPER_FLAGS):
    res = vectorize_kernel(kern, flags)
    return {r.loop_var: r.status for r in res.remarks}, res


def test_copy_loop_bypasses_cost_model_even_tiny_trip():
    """The VEC2 mechanism: a 4-element copy loop still vectorizes."""
    small = Loop("j", Extent(4), (Assign(Ref(A, (var("j"),)), Load(Ref(B, (var("j"),)))),))
    statuses, res = vec_statuses(kernel([small]))
    assert statuses["j"] == "vectorized"
    assert "cost model bypassed" in res.remark_for("j").reason


def test_copy_loop_respects_disabled_idiom_flag():
    small = Loop("j", Extent(4), (Assign(Ref(A, (var("j"),)), Load(Ref(B, (var("j"),)))),))
    flags = PAPER_FLAGS.with_(disable_loop_idiom_memcpy=False)
    statuses, _ = vec_statuses(kernel([small]), flags)
    assert statuses["j"] == "unprofitable"


def test_disabled_when_no_mepi():
    statuses, _ = vec_statuses(kernel([loop([Assign(Ref(A, (var("i"),)), L(B))])]),
                               SCALAR_FLAGS)
    assert statuses["i"] == "disabled"


def test_multi_versioned_mixed_loop():
    """The phase-1 situation: copies + control flow in one loop body."""
    body = [
        Assign(Ref(A, (var("i"),)), L(B)),
        If(Cond("ne", L(C_), Const(0.0)), (Assign(Ref(C_, (var("i"),)), Const(1.0)),)),
    ]
    statuses, res = vec_statuses(kernel([loop(body)]))
    assert statuses["i"] == "multi_versioned"
    # and the loop is NOT actually vectorized
    lp = next(walk_loops(res.kernel.body))
    assert not lp.vectorized


def test_blocked_loop_with_only_stores_is_plain_blocked():
    body = [If(Cond("ne", L(C_), Const(0.0)),
               (Assign(Ref(C_, (var("i"),)), Const(1.0)),))]
    statuses, _ = vec_statuses(kernel([loop(body)]))
    assert statuses["i"] == "blocked"


def test_vectorized_flag_set_in_rewritten_tree():
    k = kernel([loop([Assign(Ref(A, (var("i"),)), L(B))])])
    res = vectorize_kernel(k, PAPER_FLAGS)
    lp = next(walk_loops(res.kernel.body))
    assert lp.vectorized
    assert res.vectorized_vars == {"i"}


def test_only_innermost_loops_considered():
    inner = Loop("j", Extent(8), (Assign(Ref(A, (var("j"),)), Load(Ref(B, (var("j"),)))),))
    outer = loop([inner])
    res = vectorize_kernel(kernel([outer]), PAPER_FLAGS)
    assert {r.loop_var for r in res.remarks} == {"j"}
    loops = {l.var: l for l in walk_loops(res.kernel.body)}
    assert loops["j"].vectorized and not loops["i"].vectorized
