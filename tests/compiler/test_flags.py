"""Tests for the compiler-flag model."""

import pytest

from repro.compiler.flags import PAPER_FLAGS, SCALAR_FLAGS, TABLE1_ROWS, CompilerFlags


def test_paper_flags_enable_vectorization():
    assert PAPER_FLAGS.vectorize_enabled
    assert PAPER_FLAGS.ffp_contract_fast
    assert PAPER_FLAGS.vectorizer_use_vp_strided


def test_scalar_flags_disable_vectorization():
    assert not SCALAR_FLAGS.vectorize_enabled


def test_low_opt_disables_vectorization():
    assert not CompilerFlags(opt_level=1).vectorize_enabled
    assert CompilerFlags(opt_level=2).vectorize_enabled


def test_copy_loop_bypass_requires_table1_combo():
    assert PAPER_FLAGS.copy_loops_bypass_cost_model
    assert not PAPER_FLAGS.with_(disable_loop_idiom_memcpy=False).copy_loops_bypass_cost_model
    assert not PAPER_FLAGS.with_(combiner_store_merging=True).copy_loops_bypass_cost_model


def test_with_returns_modified_copy():
    f = PAPER_FLAGS.with_(profit_threshold=9.9)
    assert f.profit_threshold == 9.9
    assert PAPER_FLAGS.profit_threshold != 9.9
    assert f.mepi == PAPER_FLAGS.mepi


def test_flags_are_hashable_and_frozen():
    assert hash(PAPER_FLAGS) == hash(CompilerFlags())
    with pytest.raises(Exception):
        PAPER_FLAGS.opt_level = 0  # type: ignore[misc]


def test_table1_rows_complete():
    flags = [r[0] for r in TABLE1_ROWS]
    assert flags == [
        "-O3", "-ffp-contract=fast", "-mepi", "-mcpu=avispado",
        "-combiner-store-merging=0", "-vectorizer-use-vp-strided-load-store",
        "-disable-loop-idiom-memcpy", "-disable-loop-idiom-memset",
    ]


def test_small_trip_tiers():
    assert PAPER_FLAGS.small_trip_threshold > 0
    assert PAPER_FLAGS.small_trip_profit > PAPER_FLAGS.profit_threshold
