"""Tests for code generation: lowering kernels to machine blocks."""

import pytest

from repro.compiler.codegen import lower_kernel
from repro.compiler.flags import PAPER_FLAGS
from repro.compiler.ir import (
    Array,
    Assign,
    BinOp,
    Cond,
    Const,
    Extent,
    If,
    Indirect,
    Kernel,
    Load,
    Loop,
    Ref,
    const_idx,
    var,
)
from repro.compiler.vectorizer import vectorize_kernel
from repro.isa.instructions import MemPattern, ScalarOp

A = Array("a", (256,))
B = Array("b", (256,))
M = Array("m", (256, 4))
IDX = Array("idx", (256,), dtype="i8")
G = Array("g", (5000,))


def lower(kern, flags=PAPER_FLAGS):
    return lower_kernel(vectorize_kernel(kern, flags).kernel, flags)


def vloop(body, n=256):
    return Loop("i", Extent(n, "param", "VS"), tuple(body))


def test_vectorized_copy_lowering():
    k = Kernel("k", 1, (vloop([Assign(Ref(A, (var("i"),)), Load(Ref(B, (var("i"),))))]),))
    compiled = lower(k)
    vblocks = compiled.vector_blocks()
    assert len(vblocks) == 1
    vb = vblocks[0]
    assert vb.total_trip == 256
    opcodes = [d.spec.opcode for d in vb.instrs]
    assert opcodes == ["vle", "vse"]


def test_gather_lowering_emits_index_load_and_shift():
    stmt = Assign(Ref(A, (var("i"),)),
                  Load(Ref(G, (Indirect(IDX, (var("i"),)),))))
    compiled = lower(Kernel("k", 1, (vloop([stmt]),)))
    vb = compiled.vector_blocks()[0]
    opcodes = [d.spec.opcode for d in vb.instrs]
    # index vector load, control-lane shift, indexed gather, store
    assert opcodes == ["vle", "vext", "vlxe", "vse"]


def test_strided_refs_lower_to_strided_ops():
    stmt = Assign(Ref(M, (const_idx(0), var("i"))),   # stride 256 along i
                  Load(Ref(A, (var("i"),))))
    compiled = lower(Kernel("k", 1, (vloop([stmt]),)))
    vb = compiled.vector_blocks()[0]
    stores = [d for d in vb.instrs if d.spec.is_store]
    assert stores[0].spec.mem_pattern is MemPattern.STRIDED


def test_uniform_operand_becomes_scalar_load():
    w = Array("w", (8,))
    stmt = Assign(Ref(A, (var("i"),)),
                  BinOp("mul", Load(Ref(w, (const_idx(3),))), Load(Ref(B, (var("i"),)))))
    compiled = lower(Kernel("k", 1, (vloop([stmt]),)))
    vb = compiled.vector_blocks()[0]
    # the w load is NOT a vector instruction
    assert all(d.access is None or d.access.ref.array.name != "w" for d in vb.instrs)
    assert dict(vb.scalar_counts_per_strip)[ScalarOp.LOAD] >= 1
    # a companion scalar block performs the uniform load (for the caches)
    labels = [b.label for b in compiled.scalar_blocks()]
    assert any("uniform" in l for l in labels)


def test_fma_contraction_in_vector_code():
    stmt = Assign(Ref(A, (var("i"),)),
                  BinOp("add", BinOp("mul", Load(Ref(B, (var("i"),))),
                                     Load(Ref(B, (var("i"),)))),
                        Load(Ref(A, (var("i"),)))))
    compiled = lower(Kernel("k", 1, (vloop([stmt]),)))
    vb = compiled.vector_blocks()[0]
    assert sum(1 for d in vb.instrs if d.spec.opcode == "vfmadd") == 1


def test_scalar_loop_control_includes_dummy_reload():
    """A runtime_dummy bound re-loads the trip count every iteration."""
    k = Kernel("k", 1, (
        Loop("i", Extent(64, "runtime_dummy", "VECTOR_DIM"),
             (Assign(Ref(A, (var("i"),)), Const(0.0)),)),
    ))
    compiled = lower(k)
    ctl = [b for b in compiled.scalar_blocks() if "loop-control" in b.label]
    assert len(ctl) == 1
    assert dict(ctl[0].counts).get(ScalarOp.LOAD, 0) == 1.0


def test_vectorized_loop_emits_no_per_iteration_control():
    k = Kernel("k", 1, (vloop([Assign(Ref(A, (var("i"),)), Load(Ref(B, (var("i"),))))]),))
    compiled = lower(k)
    assert not any("loop-control(i)" in b.label for b in compiled.scalar_blocks())


def test_if_guard_scales_weights():
    guarded = If(Cond("ne", Load(Ref(B, (var("i"),))), Const(0.0)),
                 (Assign(Ref(A, (var("i"),)), Const(1.0)),), est_taken=0.25)
    k = Kernel("k", 1, (Loop("i", Extent(64), (guarded,)),))
    compiled = lower(k)
    guarded_blocks = [b for b in compiled.scalar_blocks()
                      if b.label == "straight-line" and b.accesses]
    assert guarded_blocks
    assert all(a.weight == pytest.approx(0.25)
               for b in guarded_blocks for a in b.accesses if a.is_store)
    # the guard itself costs a compare + branch at full weight
    ifb = [b for b in compiled.scalar_blocks() if b.label == "if-guard"]
    assert len(ifb) == 1
    assert dict(ifb[0].counts)[ScalarOp.BRANCH] == 1.0


def test_scalar_gather_pays_indirect_addressing():
    stmt = Assign(Ref(A, (var("i"),)),
                  Load(Ref(G, (Indirect(IDX, (var("i"),)),))))
    k = Kernel("k", 1, (Loop("i", Extent(64), (stmt,)),))
    compiled = lower(k, PAPER_FLAGS.with_(mepi=False))  # force scalar path
    body = [b for b in compiled.scalar_blocks() if b.label == "straight-line"][0]
    counts = dict(body.counts)
    assert counts[ScalarOp.MUL] >= 1  # index scaling
    assert counts[ScalarOp.LOAD] == 2  # idx + gathered value


def test_nested_scalar_loops_extents():
    inner = Loop("j", Extent(4), (Assign(Ref(M, (var("i"), var("j"))), Const(0.0)),))
    k = Kernel("k", 1, (Loop("i", Extent(256), (inner,)),))
    compiled = lower(k, PAPER_FLAGS.with_(mepi=False))
    body = [b for b in compiled.scalar_blocks() if b.label == "straight-line"][0]
    assert body.loop_vars == ("i", "j")
    assert body.loop_extents == (256, 4)
    assert body.trips == 1024
