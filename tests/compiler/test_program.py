"""Tests for the program representation and address evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.ir import Affine, Array, Indirect, Ref, const_idx, var
from repro.compiler.program import (
    AccessDesc,
    ArrayBinding,
    KernelInstance,
    MemoryLayout,
    VectorInstrDesc,
    byte_addresses,
    element_offsets,
    eval_index,
    loop_grid,
)
from repro.isa.instructions import VFMADD, VLE


def test_memory_layout_no_overlap_and_aligned():
    layout = MemoryLayout(start=0x1000, align=64)
    a = Array("a", (10,))
    b = Array("b", (100,))
    base_a = layout.place(a)
    base_b = layout.place(b)
    assert base_a == 0x1000
    assert base_b >= base_a + a.nbytes
    assert base_b % 64 == 0
    # placing again returns the same address
    assert layout.place(a) == base_a


def test_array_binding_shape_check():
    a = Array("a", (4, 2))
    with pytest.raises(ValueError):
        ArrayBinding(a, 0, np.zeros((2, 4)))


def test_instance_bind_and_data():
    inst = KernelInstance()
    a = Array("a", (8,), dtype="i8")
    inst.bind(a, np.arange(8))
    assert inst.data("a").dtype == np.int64
    with pytest.raises(KeyError):
        inst.binding("missing")
    f = Array("f", (8,))
    inst.bind(f)
    with pytest.raises(ValueError, match="no data"):
        inst.data("f")
    d = inst.ensure_data(f)
    assert d.shape == (8,) and d.dtype == np.float64


def test_loop_grid_iteration_order():
    env = loop_grid(("i", "j"), (2, 3))
    # flattening i*3 + j must be iteration order (j fastest)
    flat = (env["i"] * 3 + env["j"])
    assert np.broadcast_to(flat, (2, 3)).reshape(-1).tolist() == list(range(6))


def test_eval_index_affine_with_index_consts():
    inst = KernelInstance(index_consts={"chunk0": 100})
    env = loop_grid(("i",), (4,))
    e = Affine((("i", 1), ("chunk0", 1)), const=2)
    vals = np.broadcast_to(eval_index(e, env, inst), (4,))
    assert vals.tolist() == [102, 103, 104, 105]


def test_eval_index_unbound_var_raises():
    inst = KernelInstance()
    with pytest.raises(KeyError):
        eval_index(var("zz"), {}, inst)


def test_eval_index_indirect_gather():
    inst = KernelInstance()
    idx = Array("idx", (4,), dtype="i8")
    inst.bind(idx, np.array([5, 1, 7, 2]))
    e = Indirect(idx, (var("i"),), scale=2, offset=1)
    env = loop_grid(("i",), (4,))
    vals = np.broadcast_to(eval_index(e, env, inst), (4,))
    assert vals.tolist() == [11, 3, 15, 5]


def test_byte_addresses_column_major():
    inst = KernelInstance()
    a = Array("a", (4, 3))
    binding = inst.bind(a)
    ref = Ref(a, (var("i"), var("j")))
    env = loop_grid(("i", "j"), (4, 3))
    addrs = np.broadcast_to(byte_addresses(ref, env, inst), (4, 3))
    # column-major: element (i, j) at base + 8*(i + 4*j)
    assert addrs[2, 1] == binding.base_addr + 8 * (2 + 4 * 1)
    assert addrs[0, 0] == binding.base_addr


def test_element_offsets_with_nested_indirect():
    inst = KernelInstance()
    lnods = Array("lnods", (4, 2), dtype="i8")
    inst.bind(lnods, np.array([[0, 1], [2, 3], [4, 5], [6, 7]]))
    coord = Array("coord", (8, 3))
    inst.bind(coord)
    ref = Ref(coord, (Indirect(lnods, (var("e"), var("n"))), const_idx(2)))
    env = loop_grid(("e", "n"), (4, 2))
    offs = np.broadcast_to(element_offsets(ref, env, inst), (4, 2))
    # coord is (8, 3) column-major: offset = node + 8*2
    assert offs[1, 0] == 2 + 16
    assert offs[3, 1] == 7 + 16


def test_vector_instr_desc_memory_requires_access():
    with pytest.raises(ValueError):
        VectorInstrDesc(VLE, None)
    VectorInstrDesc(VFMADD)  # arithmetic needs no access


@settings(deadline=None, max_examples=30)
@given(
    st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=3),
    st.integers(min_value=0, max_value=1000),
)
def test_addresses_stay_in_bounds(shape, start):
    """Every address of an in-bounds ref lies inside the allocation."""
    inst = KernelInstance(layout=MemoryLayout(start=start or 64))
    a = Array("a", tuple(shape))
    binding = inst.bind(a)
    loop_vars = tuple(f"v{k}" for k in range(len(shape)))
    ref = Ref(a, tuple(var(v) for v in loop_vars))
    env = loop_grid(loop_vars, tuple(shape))
    addrs = np.broadcast_to(byte_addresses(ref, env, inst), tuple(shape)).reshape(-1)
    assert addrs.min() >= binding.base_addr
    assert addrs.max() + 8 <= binding.base_addr + a.nbytes
    # all addresses distinct (bijective linearization)
    assert len(set(addrs.tolist())) == a.size
