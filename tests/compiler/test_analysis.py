"""Tests for the vectorization legality rules (R1-R5)."""

from repro.compiler.analysis import body_is_pure_copy, check_loop, refs_in_expr
from repro.compiler.flags import PAPER_FLAGS
from repro.compiler.ir import (
    Array,
    Assign,
    Cond,
    Const,
    Extent,
    If,
    Indirect,
    Load,
    Loop,
    Ref,
    const_idx,
    var,
)

A = Array("a", (64,))
B = Array("b", (64,))
IDX = Array("idx", (64,), dtype="i8")
G = Array("g", (1000,))


def loop(body, extent=None, varname="i"):
    return Loop(varname, extent or Extent(64, "param", "VS"), tuple(body))


def copy_stmt():
    return Assign(Ref(A, (var("i"),)), Load(Ref(B, (var("i"),))))


def blocker_codes(lp, enclosing=(), flags=PAPER_FLAGS):
    return [b.code for b in check_loop(lp, enclosing, flags)]


def test_clean_copy_loop_is_legal():
    assert blocker_codes(loop([copy_stmt()])) == []


def test_r1_runtime_dummy_own_extent():
    lp = loop([copy_stmt()], extent=Extent(64, "runtime_dummy", "VECTOR_DIM"))
    codes = blocker_codes(lp)
    assert codes == ["R1-runtime-trip-count"]


def test_r1_runtime_dummy_enclosing_extent():
    """The original phase-2 situation: the *outer* loop's dummy bound
    poisons the whole nest."""
    inner = loop([copy_stmt()], varname="j", extent=Extent(4))
    outer = Loop("i", Extent(64, "runtime_dummy", "VECTOR_DIM"), (inner,))
    assert "R1-runtime-trip-count" in blocker_codes(inner, enclosing=(outer,))


def test_r2_control_flow():
    guarded = If(Cond("ne", Load(Ref(B, (var("i"),))), Const(0.0)),
                 (copy_stmt(),))
    assert "R2-control-flow" in blocker_codes(loop([guarded]))


def test_r3_scatter_store_blocked():
    """The phase-8 situation: indexed store may carry conflicts."""
    scatter = Assign(Ref(G, (Indirect(IDX, (var("i"),)),)),
                     Load(Ref(A, (var("i"),))), accumulate=True)
    assert "R3-may-alias-scatter" in blocker_codes(loop([scatter]))


def test_gather_load_is_legal():
    gather = Assign(Ref(A, (var("i"),)),
                    Load(Ref(G, (Indirect(IDX, (var("i"),)),))))
    assert blocker_codes(loop([gather])) == []


def test_r4_strided_needs_flag():
    m = Array("m", (64, 4))
    strided = Assign(Ref(m, (const_idx(0), var("i"))),
                     Load(Ref(A, (var("i"),))))
    no_strided = PAPER_FLAGS.with_(vectorizer_use_vp_strided=False)
    assert "R4-strided-store" in blocker_codes(loop([strided]), flags=no_strided)
    assert blocker_codes(loop([strided])) == []  # Table-1 flag allows it


def test_r4_strided_load_needs_flag():
    m = Array("m", (64, 4))
    stmt = Assign(Ref(A, (var("i"),)),
                  Load(Ref(m, (const_idx(0), var("i")))))
    no_strided = PAPER_FLAGS.with_(vectorizer_use_vp_strided=False)
    assert "R4-strided-load" in blocker_codes(loop([stmt]), flags=no_strided)


def test_r5_reduction_needs_contraction():
    scalar_target = Array("s", (1,))
    red = Assign(Ref(scalar_target, (const_idx(0),)),
                 Load(Ref(A, (var("i"),))), accumulate=True)
    strict = PAPER_FLAGS.with_(ffp_contract_fast=False)
    assert "R5-reduction" in blocker_codes(loop([red]), flags=strict)
    assert blocker_codes(loop([red])) == []


def test_r5_uniform_store_blocked():
    scalar_target = Array("s", (1,))
    st = Assign(Ref(scalar_target, (const_idx(0),)), Load(Ref(A, (var("i"),))))
    assert "R5-uniform-store" in blocker_codes(loop([st]))


def test_body_is_pure_copy():
    assert body_is_pure_copy(loop([copy_stmt()]))
    assert not body_is_pure_copy(loop([Assign(Ref(A, (var("i"),)), Const(0.0))]))
    acc = Assign(Ref(A, (var("i"),)), Load(Ref(B, (var("i"),))), accumulate=True)
    assert not body_is_pure_copy(loop([acc]))
    assert not body_is_pure_copy(loop([]))


def test_refs_in_expr_includes_gather_index_arrays():
    gather = Load(Ref(G, (Indirect(IDX, (var("i"),)),)))
    names = {r.array.name for r in refs_in_expr(gather)}
    assert names == {"g", "idx"}
