"""Shared fixtures.

Meshes are deliberately tiny: semantics tests interpret the IR element
by element, and the paper-shape tests in ``benchmarks/`` use the full
mesh instead.
"""

from __future__ import annotations

import pytest

from repro.cfd.mesh import Mesh, box_mesh


@pytest.fixture(scope="session")
def mesh222() -> Mesh:
    """8 elements, 27 nodes."""
    return box_mesh(2, 2, 2)


@pytest.fixture(scope="session")
def mesh322() -> Mesh:
    """12 elements -- odd enough to exercise chunk padding at VS=8."""
    return box_mesh(3, 2, 2)


@pytest.fixture(scope="session")
def mesh444() -> Mesh:
    """64 elements, 125 nodes."""
    return box_mesh(4, 4, 4)
