"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_info(capsys):
    code, out = run_cli(capsys, "info")
    assert code == 0
    assert "RISC-V VEC" in out and "SX-Aurora" in out


def test_table1_and_2_static(capsys):
    code, out = run_cli(capsys, "table", "1")
    assert code == 0 and "-mepi" in out
    code, out = run_cli(capsys, "table", "2")
    assert code == 0 and "Frequency" in out


def test_table3_quick_mesh(capsys):
    code, out = run_cli(capsys, "table", "3", "--mesh", "quick")
    assert code == 0
    assert "% of total cycles" in out


def test_figure11(capsys):
    code, out = run_cli(capsys, "figure", "11", "--mesh", "quick")
    assert code == 0
    assert "vanilla" in out and "vec1" in out


def test_sweep_barchart(capsys):
    code, out = run_cli(capsys, "sweep", "--mesh", "quick")
    assert code == 0
    assert "#" in out and "VECTOR_SIZE = 240" in out


def test_remarks(capsys):
    code, out = run_cli(capsys, "remarks", "--opt", "vanilla", "--vs", "64")
    assert code == 0
    assert "blocked" in out and "vectorized" in out


def test_advise(capsys):
    code, out = run_cli(capsys, "advise", "--opt", "vanilla", "--vs", "240")
    assert code == 0
    assert "phase 2" in out
    assert "compile time" in out


def test_codesign_loop(capsys):
    code, out = run_cli(capsys, "codesign", "--vs", "64")
    assert code == 0
    assert "vanilla" in out and "vec1" in out and "final:" in out


def test_trace_export(tmp_path, capsys):
    out_file = tmp_path / "t.prv"
    code, out = run_cli(capsys, "trace", "--opt", "vec1", "--vs", "64",
                        "-o", str(out_file))
    assert code == 0
    assert out_file.exists()
    assert "trace written" in out
    from repro.trace import paraver

    trace = paraver.load(out_file)
    assert trace.blocks


def test_trace_preset_and_chrome_export(tmp_path, capsys):
    prv = tmp_path / "t.prv"
    chrome_json = tmp_path / "t.json"
    code, out = run_cli(capsys, "trace", "--preset", "tiny",
                        "-o", str(prv), "--out", str(chrome_json))
    assert code == 0
    assert "phase timeline" in out and "granted-vl histogram" in out
    # paraver companions land next to the .prv
    assert (tmp_path / "t.pcf").exists() and (tmp_path / "t.row").exists()
    from repro.obs import chrome
    from repro.trace import paraver

    events = chrome.load(chrome_json)
    assert len(set(chrome.phase_span_names(events))) == 8
    assert paraver.load(prv).blocks


def test_trace_chrome_export_is_deterministic(tmp_path, capsys):
    paths = [tmp_path / "a.json", tmp_path / "b.json"]
    for p in paths:
        code, _ = run_cli(capsys, "trace", "--preset", "tiny",
                          "-o", str(p.with_suffix(".prv")), "--out", str(p))
        assert code == 0
    assert paths[0].read_bytes() == paths[1].read_bytes()


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_parser_rejects_bad_table():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["table", "9"])


def test_parser_rejects_unknown_backend_listing_registry(capsys):
    # choices come from the live registry: the error names the known
    # backends instead of surfacing a KeyError deep in the stack.
    with pytest.raises(SystemExit):
        build_parser().parse_args(["sweep", "--backend", "fortran"])
    err = capsys.readouterr().err
    assert "interpreter" in err and "numpy" in err


def test_parser_accepts_service_commands():
    args = build_parser().parse_args(["serve", "--state-dir", "x"])
    assert args.command == "serve"
    args = build_parser().parse_args(["submit", "--ladder", "--wait"])
    assert args.command == "submit" and args.ladder and args.wait
    args = build_parser().parse_args(["jobs", "--health"])
    assert args.command == "jobs" and args.health
    args = build_parser().parse_args(["chaos", "--service-faults"])
    assert args.service_faults


def test_parser_accepts_telemetry_commands():
    args = build_parser().parse_args(["top", "--once", "--json"])
    assert args.command == "top" and args.once and args.json
    assert args.interval == 2.0
    args = build_parser().parse_args(["submit", "--trace"])
    assert args.trace
    args = build_parser().parse_args(
        ["trace", "--job", "j00001", "--state-dir", "svc"])
    assert args.job == "j00001" and args.state_dir == "svc"


def test_trace_job_without_export_exits_1(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["trace", "--job", "j99999", "--state-dir", str(tmp_path)])
    assert code == 1
    assert "no trace for job j99999" in capsys.readouterr().err


def test_trace_job_renders_exported_timeline(tmp_path, capsys):
    from repro.experiments.config import RunConfig
    from repro.service.core import SweepService

    svc = SweepService(str(tmp_path / "svc"))
    cfg = RunConfig(opt="vanilla", vector_size=16, mesh_dims=(4, 4, 4))
    resp = svc.submit([cfg], tenant="alice", trace_id="cafe0123cafe0123")
    svc.process_next()
    svc.close()
    code, out = run_cli(capsys, "trace", "--job", resp["job_id"],
                        "--state-dir", str(tmp_path / "svc"))
    assert code == 0
    assert "trace cafe0123cafe0123" in out
    # the single cross-process timeline, stage-ordered.
    for span in ("client-submit", "queue-wait", "worker-execute",
                 "store-write"):
        assert span in out
    assert out.index("client-submit") < out.index("queue-wait") \
        < out.index("worker-execute") < out.index("store-write")
    assert "all spans share trace id cafe0123cafe0123" in out


def test_roofline_command(capsys):
    code, out = run_cli(capsys, "roofline", "--opt", "vec1", "--vs", "64")
    assert code == 0
    assert "ridge" in out and "phase" in out


def test_report_command_to_file(tmp_path, capsys):
    out_file = tmp_path / "report.txt"
    code, out = run_cli(capsys, "report", "--mesh", "quick",
                        "-o", str(out_file))
    assert code == 0
    text = out_file.read_text()
    assert "HEADLINE" in text and "Table 5" in text


def test_machine_choices_include_extensions(capsys):
    code, out = run_cli(capsys, "remarks", "--machine", "a64fx",
                        "--opt", "vanilla", "--vs", "64")
    assert code == 0


def test_jobs_flag_output_identical(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code, out_parallel = run_cli(capsys, "figure", "2", "--mesh", "quick",
                                 "-j", "2")
    assert code == 0
    code, out_serial = run_cli(capsys, "figure", "2", "--mesh", "quick",
                               "-j", "1")
    assert code == 0
    assert out_parallel == out_serial


def test_bench_smoke_writes_json_report(tmp_path, capsys, monkeypatch):
    import json

    monkeypatch.chdir(tmp_path)
    code, out = run_cli(capsys, "bench", "--mesh", "quick",
                        "--profile", "smoke", "-j", "2",
                        "-o", "bench.json")
    assert code == 0
    assert "speedup" in out and "warm recall" in out
    payload = json.loads((tmp_path / "bench.json").read_text())
    assert payload["configs"] == 4 and payload["jobs"] == 2
    assert payload["cold_simulated"] == 4 and payload["warm_cache_hits"] == 4
    assert payload["serial_s"] > 0 and payload["parallel_s"] > 0
    assert len(payload["phase_cycles"]) == 4
    for key, phases in payload["phase_cycles"].items():
        last = 13 if key.endswith("-solve") else 9
        assert set(phases) == {str(p) for p in range(1, last)}


def test_bench_appends_history_jsonl(tmp_path, capsys, monkeypatch):
    import json

    monkeypatch.chdir(tmp_path)
    for _ in range(2):
        code, out = run_cli(capsys, "bench", "--mesh", "tiny",
                            "--profile", "smoke", "-o", "bench.json")
        assert code == 0
        assert "history appended to" in out
    lines = (tmp_path / "BENCH_history.jsonl").read_text().splitlines()
    assert len(lines) == 2  # one line per run, appended not overwritten
    for line in lines:
        entry = json.loads(line)
        assert entry["mesh"] == [4, 4, 4] and entry["profile"] == "smoke"
        assert entry["timestamp"] and entry["host"] and entry["machine"]
        assert entry["serial_s"] > 0 and entry["speedup"] is not None


def test_bench_baseline_gate(tmp_path, capsys, monkeypatch):
    import json

    monkeypatch.chdir(tmp_path)
    code, _ = run_cli(capsys, "bench", "--mesh", "tiny",
                      "--profile", "smoke", "-o", "base.json")
    assert code == 0

    # fresh report vs itself: within tolerance, exit 0.
    code, out = run_cli(capsys, "bench", "--mesh", "tiny",
                        "--profile", "smoke", "-o", "cur.json",
                        "--baseline", "base.json")
    assert code == 0 and "gate:" in out

    # inject a >=10% per-phase regression into the baseline: exit 1.
    doc = json.loads((tmp_path / "base.json").read_text())
    key = next(iter(doc["phase_cycles"]))
    doc["phase_cycles"][key]["6"] *= 1.15
    (tmp_path / "regressed.json").write_text(json.dumps(doc))
    code, out = run_cli(capsys, "bench", "--mesh", "tiny",
                        "--profile", "smoke", "-o", "cur2.json",
                        "--baseline", "regressed.json")
    assert code == 1
    assert "FAIL" in out and "phase 6" in out

    # a wider threshold lets the same drift through.
    code, out = run_cli(capsys, "bench", "--mesh", "tiny",
                        "--profile", "smoke", "-o", "cur3.json",
                        "--baseline", "regressed.json",
                        "--threshold", "0.25")
    assert code == 0 and "gate:" in out


def test_bench_baseline_unusable_exits_2(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code, _ = run_cli(capsys, "bench", "--mesh", "tiny",
                      "--profile", "smoke", "-o", "cur.json",
                      "--baseline", "missing.json")
    assert code == 2


def test_cli_survives_corrupted_cache(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code, _ = run_cli(capsys, "table", "3", "--mesh", "quick")
    assert code == 0
    for f in (tmp_path / ".repro_cache").glob("*.json"):
        f.write_text('{"truncated')
    code, out = run_cli(capsys, "table", "3", "--mesh", "quick")
    assert code == 0
    assert "% of total cycles" in out
