"""The ``repro passes`` subcommand and chaos ``--validate`` wiring."""

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_passes_ivec2_shows_before_after_ir(capsys):
    code, out = run_cli(capsys, "passes", "--preset", "tiny",
                        "--opt", "ivec2")
    assert code == 0
    assert "const-trip-count" in out and "loop-interchange" in out
    assert "-- before:" in out and "-- after:" in out
    # the promoted bound and the sunk loop are visible in the IR dump.
    assert "VECTOR_DIM[runtime dummy=240]" in out
    assert "VECTOR_SIZE[param=240]" in out
    assert out.index("do ivect") < out.index("do inode")


def test_passes_vec1_reports_illegal_interchange_on_phase8(capsys):
    code, out = run_cli(capsys, "passes", "--preset", "tiny",
                        "--opt", "vec1")
    assert code == 0
    assert "loop-fission]: applied" in out
    assert "illegal" in out and "control flow" in out


def test_passes_scalar_has_empty_pipeline(capsys):
    code, out = run_cli(capsys, "passes", "--preset", "tiny",
                        "--opt", "scalar")
    assert code == 0
    assert "(empty)" in out


def test_passes_full_prints_expressions(capsys):
    _, elided = run_cli(capsys, "passes", "--preset", "tiny",
                        "--opt", "vec2")
    _, full = run_cli(capsys, "passes", "--preset", "tiny",
                      "--opt", "vec2", "--full")
    assert "= ..." in elided
    assert "lnods" in full and "= ..." not in full


def test_trace_prints_transform_pipeline(capsys, tmp_path):
    code, out = run_cli(capsys, "trace", "--preset", "tiny",
                        "--opt", "ivec2",
                        "-o", str(tmp_path / "t.prv"))
    assert code == 0
    assert "transform pipeline" in out
    assert "[const-trip-count] applied" in out
