"""Tests for the Table-2 platform presets."""

import pytest

from repro.machine.machines import MACHINES, MN4_AVX512, RISCV_VEC, SX_AURORA, get_machine


def test_table2_riscv_values():
    m = RISCV_VEC
    assert m.frequency_mhz == 50.0
    assert m.cores_per_socket == 1
    assert m.memory.bandwidth_bytes_per_cycle == 64.0
    assert m.peak_flops_per_cycle == 16.0
    assert m.vl_max == 256
    assert m.vpu.lanes == 8
    assert m.vpu.fsm_group_elems == 40
    assert m.memory.l2.size_bytes == 1024 * 1024  # the FPGA's 1 MB L2


def test_table2_nec_values():
    m = SX_AURORA
    assert m.frequency_mhz == 1600.0
    assert m.cores_per_socket == 8
    assert m.memory.bandwidth_bytes_per_cycle == 120.0
    assert m.peak_flops_per_cycle == 192.0
    assert m.vl_max == 256
    assert m.vpu.fsm_depth is None


def test_table2_mn4_values():
    m = MN4_AVX512
    assert m.frequency_mhz == 2100.0
    assert m.cores_per_socket == 24
    assert m.peak_flops_per_cycle == 32.0
    assert m.vl_max == 8


def test_peak_gflops():
    # NEC: 307.2 GFLOPS per VE core (paper section 2.4)
    assert SX_AURORA.peak_gflops == pytest.approx(307.2)
    # MN4: 67.2 GFLOPS per core
    assert MN4_AVX512.peak_gflops == pytest.approx(67.2)
    # RISC-V VEC at 50 MHz FPGA: 16 FLOP/cycle * 50 MHz = 0.8 GFLOPS
    assert RISCV_VEC.peak_gflops == pytest.approx(0.8)


def test_cycles_to_seconds():
    assert RISCV_VEC.cycles_to_seconds(50_000_000) == pytest.approx(1.0)


def test_get_machine_lookup():
    assert get_machine("riscv_vec") is RISCV_VEC
    assert get_machine("SX_AURORA") is SX_AURORA
    with pytest.raises(KeyError):
        get_machine("cray1")


def test_all_machines_have_vpus_and_caches():
    for m in MACHINES.values():
        assert m.has_vpu
        assert m.memory.l1.size_bytes > 0
        assert m.vpu.vl_max in (8, 256)


def test_next_prototype_preset():
    from repro.machine.machines import RISCV_VEC_NEXT

    assert RISCV_VEC_NEXT.vpu.fsm_depth is None
    assert RISCV_VEC_NEXT.vpu.fsm_flush_cycles == 0.0
    # everything else inherited from the current prototype
    assert RISCV_VEC_NEXT.vl_max == RISCV_VEC.vl_max
    assert RISCV_VEC_NEXT.frequency_mhz == RISCV_VEC.frequency_mhz


def test_a64fx_preset():
    from repro.machine.machines import A64FX

    assert A64FX.vl_max == 8          # 512-bit SVE, doubles
    assert A64FX.vpu.fsm_depth is None
    assert get_machine("a64fx") is A64FX
