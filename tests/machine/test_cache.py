"""Tests for the set-associative LRU cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.cache import (
    Cache,
    MemoryHierarchy,
    addresses_to_lines,
    dedup_consecutive,
)
from repro.machine.params import CacheParams, MemoryParams


def make_cache(size=1024, line=64, assoc=2, penalty=10.0) -> Cache:
    return Cache(CacheParams("t", size, line_bytes=line, assoc=assoc,
                             miss_penalty=penalty))


def test_addresses_to_lines():
    addrs = np.array([0, 63, 64, 127, 128])
    np.testing.assert_array_equal(addresses_to_lines(addrs, 64), [0, 0, 1, 1, 2])


def test_dedup_consecutive():
    lines = np.array([1, 1, 1, 2, 2, 1, 3, 3])
    np.testing.assert_array_equal(dedup_consecutive(lines), [1, 2, 1, 3])
    assert dedup_consecutive(np.array([], dtype=np.int64)).size == 0
    assert dedup_consecutive(np.array([7])).tolist() == [7]


def test_cold_misses_then_hits():
    c = make_cache()
    missed = c.access_lines(np.array([0, 1, 2]))
    assert missed.tolist() == [0, 1, 2]
    missed = c.access_lines(np.array([0, 1, 2]))
    assert missed.size == 0
    assert c.accesses == 6 and c.misses == 3
    assert c.miss_rate == pytest.approx(0.5)


def test_lru_eviction_order():
    # 1024 B / 64 B / 2-way -> 8 sets; lines 0, 8, 16 map to set 0.
    c = make_cache()
    c.access_lines(np.array([0, 8]))       # set 0 holds {0, 8}
    c.access_lines(np.array([0]))          # touch 0 -> LRU is 8
    missed = c.access_lines(np.array([16]))  # evicts 8
    assert missed.tolist() == [16]
    assert c.access_lines(np.array([0])).size == 0      # 0 still resident
    assert c.access_lines(np.array([8])).tolist() == [8]  # 8 was evicted


def test_reset():
    c = make_cache()
    c.access_lines(np.array([1, 2, 3]))
    c.reset()
    assert c.accesses == 0 and c.misses == 0
    assert c.access_lines(np.array([1])).tolist() == [1]


def test_hierarchy_penalties_and_counts():
    params = MemoryParams(
        l1=CacheParams("L1", 512, line_bytes=64, assoc=2, miss_penalty=10.0),
        l2=CacheParams("L2", 4096, line_bytes=64, assoc=4, miss_penalty=100.0),
    )
    h = MemoryHierarchy(params)
    # 4 distinct lines, all cold: 4 L1 misses + 4 L2 misses.
    penalty = h.access(np.arange(4) * 64)
    assert penalty == pytest.approx(4 * 10.0 + 4 * 100.0)
    assert h.l1_misses == 4 and h.l2_misses == 4
    # same lines again: all L1 hits.
    assert h.access(np.arange(4) * 64) == 0.0
    assert h.element_accesses == 8


def test_hierarchy_l2_catches_l1_evictions():
    params = MemoryParams(
        l1=CacheParams("L1", 128, line_bytes=64, assoc=1, miss_penalty=10.0),
        l2=CacheParams("L2", 4096, line_bytes=64, assoc=4, miss_penalty=100.0),
    )
    h = MemoryHierarchy(params)
    # L1 is 2 lines direct-mapped; walk 8 lines twice.
    h.access(np.arange(8) * 64)
    penalty = h.access(np.arange(8) * 64)
    # second pass: all L1 misses (capacity) but all L2 hits.
    assert penalty == pytest.approx(8 * 10.0)


def test_hierarchy_disabled_costs_nothing():
    params = MemoryParams(l1=CacheParams("L1", 512, assoc=2))
    h = MemoryHierarchy(params, enabled=False)
    assert h.access(np.arange(100) * 64) == 0.0
    assert h.l1_misses == 0
    assert h.element_accesses == 100


def test_cache_params_validation():
    with pytest.raises(ValueError):
        CacheParams("bad", size_bytes=1000, line_bytes=64, assoc=3)
    assert CacheParams("ok", 1024, line_bytes=64, assoc=4).n_sets == 4


@settings(deadline=None, max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=300))
def test_misses_bounded_and_unique_lines_lower_bound(lines):
    """Misses never exceed accesses; distinct lines each miss at least once."""
    c = make_cache(size=512, assoc=2)
    arr = np.asarray(lines, dtype=np.int64)
    c.access_lines(arr)
    assert 0 <= c.misses <= c.accesses == len(lines)
    # every distinct line has at least one compulsory miss
    assert c.misses >= len(set(lines))


@settings(deadline=None, max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=300))
def test_dedup_preserves_miss_count(lines):
    """Removing consecutive duplicates cannot change the misses."""
    a, b = make_cache(), make_cache()
    arr = np.asarray(lines, dtype=np.int64)
    a.access_lines(arr)
    b.access_lines(dedup_consecutive(arr))
    assert a.misses == b.misses


@settings(deadline=None, max_examples=30)
@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=200))
def test_fully_associative_behaviour_small_working_set(lines):
    """A working set that fits one set's ways never misses twice."""
    c = make_cache(size=64 * 64, line=64, assoc=64)  # 1 set, 64 ways
    arr = np.asarray(lines, dtype=np.int64)
    if len(set(lines)) <= 64:
        c.access_lines(arr)
        assert c.misses == len(set(lines))
