"""Tests for the VPU timing model, anchored to the paper's numbers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.instructions import VFADD, VFDIV, VFMADD, VLE, VLSE, VLXE, VMV
from repro.machine.machines import MN4_AVX512, RISCV_VEC, SX_AURORA
from repro.machine.params import VPUParams
from repro.machine.vpu import VPUModel


@pytest.fixture
def riscv() -> VPUModel:
    return VPUModel(RISCV_VEC.vpu)


def test_fma_vl256_execution_near_32_cycles(riscv):
    """Paper: 'one vector FMA takes around 32 cycles with a vector length
    of 256, while with a lower vector length takes less cycles'."""
    exec256 = riscv.arith_exec_cycles(256)
    assert 30 <= exec256 <= 36
    assert riscv.arith_exec_cycles(128) < exec256
    assert riscv.arith_exec_cycles(16) < riscv.arith_exec_cycles(128)


def test_fsm_sweet_spot_vl240_beats_vl256(riscv):
    """Footnote 4: throughput is maximized at multiples of 40 elements."""
    tput240 = 240 / riscv.instr_cycles(VFMADD, 240)
    tput256 = 256 / riscv.instr_cycles(VFMADD, 256)
    assert tput240 > tput256
    # multiples of 40 hit the full 8 elements/cycle in the exec stage
    assert riscv.arith_exec_cycles(240) == pytest.approx(240 / 8)
    assert riscv.arith_exec_cycles(200) == pytest.approx(200 / 8)


def test_memory_pattern_ordering(riscv):
    """unit-stride < strided < indexed for equal vector lengths."""
    for vl in (8, 64, 256):
        unit = riscv.instr_cycles(VLE, vl)
        strided = riscv.instr_cycles(VLSE, vl)
        indexed = riscv.instr_cycles(VLXE, vl)
        assert unit <= strided <= indexed
        assert unit < indexed


def test_long_latency_ops_cost_more(riscv):
    assert riscv.instr_cycles(VFDIV, 64) > riscv.instr_cycles(VFADD, 64)


def test_control_lane_cost_independent_of_vl(riscv):
    assert riscv.instr_cycles(VMV, 4) == riscv.instr_cycles(VMV, 256)


def test_nec_fma_graduates_in_8_cycles():
    """Paper: 'a vector FMA ... needs 8 cycles to graduate' on SX-Aurora."""
    nec = VPUModel(SX_AURORA.vpu)
    assert nec.arith_exec_cycles(256) == pytest.approx(8.0)


def test_avx512_fma_is_cheap():
    avx = VPUModel(MN4_AVX512.vpu)
    assert avx.instr_cycles(VFMADD, 8) <= 2.0


def test_no_fsm_machines_have_linear_throughput():
    nec = VPUModel(SX_AURORA.vpu)
    # no multiple-of-40 quirk: 240 and 256 have identical elements/cycle
    # in the execution stage (ceil rounding aside).
    assert nec.arith_exec_cycles(240) == pytest.approx(240 / 32, abs=1)
    assert nec.arith_exec_cycles(256) == pytest.approx(256 / 32, abs=1)


def test_zero_vl_costs_nothing_in_exec(riscv):
    assert riscv.arith_exec_cycles(0) == 0.0
    assert riscv.mem_exec_cycles(0, VLE.mem_pattern) == 0.0


def test_elements_per_cycle_peaks_at_multiple_of_40(riscv):
    best = max(range(1, 257), key=lambda vl: riscv.elements_per_cycle(VFMADD, vl))
    assert best % 40 == 0


@settings(deadline=None, max_examples=100)
@given(st.integers(min_value=1, max_value=255))
def test_instr_cycles_monotone_except_fsm_boundaries(vl):
    """More elements never execute in fewer cycles -- except when vl+1
    completes an FSM group of 40, the very quirk the paper exploits
    (a 40-element instruction is cheaper than a 39-element one)."""
    m = VPUModel(RISCV_VEC.vpu)
    if (vl + 1) % 40 != 0:
        assert m.instr_cycles(VFMADD, vl + 1) >= m.instr_cycles(VFMADD, vl)
        assert m.instr_cycles(VLE, vl + 1) >= m.instr_cycles(VLE, vl)
    else:
        # completing the group flushes nothing: strictly cheaper or equal
        assert m.instr_cycles(VFMADD, vl + 1) <= m.instr_cycles(VFMADD, vl)


@settings(deadline=None, max_examples=100)
@given(st.integers(min_value=1, max_value=256))
def test_exec_cycles_at_least_lane_limited(vl):
    """The 8 lanes bound throughput: never more than 8 elements/cycle."""
    m = VPUModel(RISCV_VEC.vpu)
    assert m.arith_exec_cycles(vl) >= vl / 8


def test_vpu_params_validation():
    with pytest.raises(ValueError):
        VPUParams(vl_max=0, lanes=8)
    with pytest.raises(ValueError):
        VPUParams(vl_max=256, lanes=8, fsm_depth=0)


def test_miss_exposure_scales_with_vl():
    p = RISCV_VEC.vpu
    assert p.miss_exposure(4) == 1.0
    assert p.miss_exposure(256) == pytest.approx(p.vector_miss_exposure)
    assert p.miss_exposure(64) > p.miss_exposure(128) > p.miss_exposure(256)
