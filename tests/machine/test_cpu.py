"""Tests for the machine executor on hand-built blocks."""

import pytest

from repro.compiler.ir import Array, Ref, var
from repro.compiler.program import (
    AccessDesc,
    CompiledKernel,
    KernelInstance,
    ScalarBlock,
    VectorBlock,
    VectorInstrDesc,
)
from repro.isa.instructions import ScalarOp, VFMADD, VLE, VSE
from repro.machine.cpu import Machine, strip_lengths
from repro.machine.machines import MN4_AVX512, RISCV_VEC
from repro.metrics.counters import RunCounters


def test_strip_lengths():
    assert strip_lengths(512, 256) == [256, 256]
    assert strip_lengths(240, 256) == [240]
    assert strip_lengths(300, 256) == [256, 44]
    assert strip_lengths(8, 8) == [8]
    assert strip_lengths(1, 256) == [1]


@pytest.fixture
def instance():
    inst = KernelInstance()
    a = Array("a", (64,), scope="local")
    b = Array("b", (64,), scope="local")
    inst.bind(a)
    inst.bind(b)
    return inst, a, b


def _scalar_block(a, b, trips=10):
    return ScalarBlock(
        phase=1,
        loop_vars=("i",),
        loop_extents=(trips,),
        counts=((ScalarOp.LOAD, 1.0), (ScalarOp.FP, 2.0), (ScalarOp.STORE, 1.0)),
        flops_per_iter=2.0,
        accesses=(
            AccessDesc(Ref(a, (var("i"),)), False),
            AccessDesc(Ref(b, (var("i"),)), True),
        ),
        label="t",
    )


def test_scalar_block_cycles_and_instructions(instance):
    inst, a, b = instance
    m = Machine(RISCV_VEC, cache_enabled=False)
    run = RunCounters()
    m.execute_kernel(CompiledKernel("k", 1, [_scalar_block(a, b)]), inst, run)
    pc = run.phases[1]
    sp = RISCV_VEC.scalar
    expected = 10 * (sp.cpi_load + 2 * sp.cpi_fp + sp.cpi_store)
    assert pc.cycles_total == pytest.approx(expected)
    assert pc.instr_scalar == 40  # 4 instrs x 10 trips
    assert pc.instr_scalar_mem == 20
    assert pc.flops == 20
    assert pc.i_v == 0


def test_scalar_block_cache_misses_add_penalty(instance):
    inst, a, b = instance
    m = Machine(RISCV_VEC, cache_enabled=True)
    run = RunCounters()
    m.execute_kernel(CompiledKernel("k", 1, [_scalar_block(a, b, trips=64)]), inst, run)
    pc = run.phases[1]
    # 64 elements x 8 B = 8 lines per array, all cold misses.
    assert pc.l1_misses == 16
    sp = RISCV_VEC.scalar
    base = 64 * (sp.cpi_load + 2 * sp.cpi_fp + sp.cpi_store)
    assert pc.cycles_total == pytest.approx(
        base + 16 * RISCV_VEC.memory.l1.miss_penalty
        + 16 * RISCV_VEC.memory.l2.miss_penalty)


def _vector_block(a, b, trip=256, repeats=1):
    return VectorBlock(
        phase=2,
        loop_vars=("g",) if repeats > 1 else (),
        loop_extents=(repeats,) if repeats > 1 else (),
        vec_var="i",
        total_trip=trip,
        instrs=(
            VectorInstrDesc(VLE, AccessDesc(Ref(a, (var("i"),)), False)),
            VectorInstrDesc(VFMADD),
            VectorInstrDesc(VSE, AccessDesc(Ref(b, (var("i"),)), True)),
        ),
        scalar_counts_per_strip=((ScalarOp.ALU, 2.0), (ScalarOp.BRANCH, 1.0)),
        label="v",
    )


def test_vector_block_counters(instance):
    inst, a, b = instance
    m = Machine(RISCV_VEC, cache_enabled=False)
    run = RunCounters()
    m.execute_kernel(CompiledKernel("k", 2, [_vector_block(a, b, trip=64)]), inst, run)
    pc = run.phases[2]
    assert pc.instr_vector_mem == 2
    assert pc.instr_vector_arith == 1
    assert pc.instr_vconfig == 1      # one strip -> one vsetvl
    assert pc.vl_hist[64] == 3
    assert pc.vl_sum == 3 * 64
    assert pc.flops == 2 * 64         # FMA = 2 flops/element
    assert pc.cycles_vector > 0
    assert pc.cycles_total > pc.cycles_vector  # strip stall + scalar bookkeeping


def test_vector_block_strip_mining_vla(instance):
    """trip 512 on a 256-wide machine -> 2 strips; on AVX-512 -> 64 strips."""
    inst, a_, b_ = instance
    a = Array("a2", (512,), scope="local")
    b = Array("b2", (512,), scope="local")
    inst.bind(a)
    inst.bind(b)
    block = _vector_block(a, b, trip=512)
    for machine_params, nstrips in ((RISCV_VEC, 2), (MN4_AVX512, 64)):
        m = Machine(machine_params, cache_enabled=False)
        run = RunCounters()
        m.execute_kernel(CompiledKernel("k", 2, [block]), inst, run)
        pc = run.phases[2]
        assert pc.instr_vconfig == nstrips
        assert pc.instr_vector_mem == 2 * nstrips
        assert pc.vl_sum == 3 * 512


def test_vector_block_repeats_scale_everything(instance):
    inst, a, b = instance
    m1 = Machine(RISCV_VEC, cache_enabled=False)
    r1 = RunCounters()
    m1.execute_kernel(CompiledKernel("k", 2, [_vector_block(a, b, trip=64)]), inst, r1)
    m8 = Machine(RISCV_VEC, cache_enabled=False)
    r8 = RunCounters()
    m8.execute_kernel(
        CompiledKernel("k", 2, [_vector_block(a, b, trip=64, repeats=8)]), inst, r8)
    assert r8.phases[2].cycles_total == pytest.approx(8 * r1.phases[2].cycles_total)
    assert r8.phases[2].i_v == 8 * r1.phases[2].i_v


def test_machine_without_vpu_rejects_vector_blocks(instance):
    inst, a, b = instance
    from dataclasses import replace

    scalar_only = replace(RISCV_VEC, vpu=None)
    m = Machine(scalar_only, cache_enabled=False)
    with pytest.raises(RuntimeError, match="no VPU"):
        m.execute_kernel(CompiledKernel("k", 2, [_vector_block(a, b)]), inst,
                         RunCounters())


def test_access_weight_subsets_addresses(instance):
    inst, a, b = instance
    half = ScalarBlock(
        phase=1, loop_vars=("i",), loop_extents=(64,),
        counts=((ScalarOp.LOAD, 0.5),), flops_per_iter=0.0,
        accesses=(AccessDesc(Ref(a, (var("i"),)), False, weight=0.5),),
        label="guarded",
    )
    m = Machine(RISCV_VEC, cache_enabled=True)
    run = RunCounters()
    m.execute_kernel(CompiledKernel("k", 1, [half]), inst, run)
    # only the first 32 elements (4 lines) are touched.
    assert run.phases[1].l1_misses == 4


def test_clock_advances_with_blocks(instance):
    inst, a, b = instance
    m = Machine(RISCV_VEC, cache_enabled=False)
    run = RunCounters()
    assert m.clock == 0.0
    m.execute_kernel(CompiledKernel("k", 1, [_scalar_block(a, b)]), inst, run)
    assert m.clock == pytest.approx(run.phases[1].cycles_total)
