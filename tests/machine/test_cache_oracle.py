"""Cross-validation of the cache simulator against an independent,
obviously-correct reference implementation.

The production cache (`repro.machine.cache.Cache`) is optimized for
throughput (per-set lists, consecutive dedup); this oracle is written
for clarity (OrderedDict-based LRU per set) and the two must agree on
miss counts and miss *positions* for arbitrary access streams.
"""

from collections import OrderedDict

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.machine.cache import Cache
from repro.machine.params import CacheParams


class OracleLRU:
    """Textbook set-associative LRU cache."""

    def __init__(self, n_sets: int, assoc: int):
        self.n_sets = n_sets
        self.assoc = assoc
        self.sets = [OrderedDict() for _ in range(n_sets)]

    def access(self, line: int) -> bool:
        """Return True on miss."""
        s = self.sets[line % self.n_sets]
        if line in s:
            s.move_to_end(line)
            return False
        s[line] = True
        if len(s) > self.assoc:
            s.popitem(last=False)
        return True


def reference_misses(lines, n_sets, assoc):
    oracle = OracleLRU(n_sets, assoc)
    return [line for line in lines if oracle.access(line)]


@settings(deadline=None, max_examples=100)
@given(
    lines=st.lists(st.integers(0, 127), min_size=0, max_size=400),
    assoc=st.sampled_from([1, 2, 4, 8]),
    n_sets_pow=st.integers(0, 4),
)
def test_cache_matches_oracle(lines, assoc, n_sets_pow):
    n_sets = 2 ** n_sets_pow
    params = CacheParams("t", size_bytes=64 * assoc * n_sets,
                         line_bytes=64, assoc=assoc)
    cache = Cache(params)
    got = cache.access_lines(np.asarray(lines, dtype=np.int64)).tolist()
    expected = reference_misses(lines, n_sets, assoc)
    assert got == expected
    assert cache.misses == len(expected)
    assert cache.accesses == len(lines)


@settings(deadline=None, max_examples=30)
@given(
    a=st.lists(st.integers(0, 63), min_size=1, max_size=150),
    b=st.lists(st.integers(0, 63), min_size=1, max_size=150),
)
def test_split_streams_equal_one_stream(a, b):
    """Feeding the stream in two batches is identical to one batch
    (the simulator is stateful across calls)."""
    params = CacheParams("t", size_bytes=64 * 4 * 8, line_bytes=64, assoc=4)
    one = Cache(params)
    one.access_lines(np.asarray(a + b, dtype=np.int64))
    two = Cache(params)
    two.access_lines(np.asarray(a, dtype=np.int64))
    two.access_lines(np.asarray(b, dtype=np.int64))
    assert one.misses == two.misses
