"""Tests for the co-design advisor: it must re-derive the paper's
optimization sequence from remarks + counters alone."""

import pytest

from repro.cfd.assembly import MiniApp
from repro.cfd.mesh import box_mesh
from repro.codesign import (
    Advisor,
    Severity,
    recommend_next_opt,
    render_findings,
    run_codesign_loop,
)
from repro.machine.machines import MN4_AVX512, RISCV_VEC


@pytest.fixture(scope="module")
def mesh():
    return box_mesh(8, 8, 15)  # 960 elements


@pytest.fixture(scope="module")
def advisor():
    return Advisor(RISCV_VEC)


def analyze(mesh, advisor, opt, vs=240):
    app = MiniApp(mesh, vector_size=vs, opt=opt)
    return advisor.analyze_miniapp(app)


def test_vanilla_flags_phase2_dummy_bound(mesh, advisor):
    findings = analyze(mesh, advisor, "vanilla")
    cats = {(f.phase, f.category) for f in findings}
    assert (2, "runtime-trip-count") in cats
    f2 = next(f for f in findings if f.category == "runtime-trip-count")
    assert "compile time" in f2.recommendation
    # phase 2 is a hotspot after vanilla vectorization -> high severity
    assert f2.severity >= Severity.MAJOR


def test_vanilla_flags_phase1_mixed_body(mesh, advisor):
    findings = analyze(mesh, advisor, "vanilla")
    f1 = [f for f in findings if f.phase == 1 and f.category == "mixed-loop-body"]
    assert f1
    assert "fission" in f1[0].recommendation


def test_vec2_flags_low_avl(mesh, advisor):
    findings = analyze(mesh, advisor, "vec2")
    low = [f for f in findings if f.phase == 2 and f.category == "low-avl"]
    assert low
    assert "innermost" in low[0].recommendation
    # the dummy-bound finding is gone
    assert not any(f.phase == 2 and f.category == "runtime-trip-count"
                   for f in findings)


def test_ivec2_clears_phase2_findings(mesh, advisor):
    findings = analyze(mesh, advisor, "ivec2")
    assert not any(f.phase == 2 and f.category in
                   ("runtime-trip-count", "low-avl") for f in findings)
    # phase 1 still mixed
    assert any(f.phase == 1 and f.category == "mixed-loop-body"
               for f in findings)


def test_vec1_leaves_no_major_actionable_findings(mesh, advisor):
    """After VEC1 nothing big remains: phase 2 is clean and the only
    leftover is phase-1's WORK A (minor) -- the paper itself notes that
    'a possible approach to increase the speed-up could be to further
    investigate how to vectorize the whole phase'."""
    findings = analyze(mesh, advisor, "vec1")
    actionable = [f for f in findings if f.category in
                  ("runtime-trip-count", "low-avl", "mixed-loop-body")]
    assert all(f.severity <= Severity.MINOR for f in actionable)
    assert all(f.phase == 1 for f in actionable)
    assert not any(f.phase == 2 for f in actionable)


def test_scatter_finding_is_informational(mesh, advisor):
    findings = analyze(mesh, advisor, "vec1")
    scatter = [f for f in findings if f.category == "scatter"]
    assert scatter and all(f.severity == Severity.INFO for f in scatter)
    assert scatter[0].phase == 8


def test_fsm_granularity_hint(mesh, advisor):
    findings = analyze(mesh, advisor, "vec1", vs=256)
    fsm = [f for f in findings if f.category == "fsm-granularity"]
    assert fsm
    assert "240" in fsm[0].recommendation
    # and VECTOR_SIZE = 240 does not trigger it
    findings240 = analyze(mesh, advisor, "vec1", vs=240)
    assert not any(f.category == "fsm-granularity" for f in findings240)


def test_no_fsm_hint_on_machines_without_quirk(mesh):
    adv = Advisor(MN4_AVX512)
    app = MiniApp(mesh, vector_size=256, opt="vec1")
    findings = adv.analyze_miniapp(app)
    assert not any(f.category == "fsm-granularity" for f in findings)


def test_recommend_next_opt_ladder(mesh, advisor):
    assert recommend_next_opt(analyze(mesh, advisor, "vanilla"), "vanilla") == "vec2"
    assert recommend_next_opt(analyze(mesh, advisor, "vec2"), "vec2") == "ivec2"
    assert recommend_next_opt(analyze(mesh, advisor, "ivec2"), "ivec2") == "vec1"
    assert recommend_next_opt(analyze(mesh, advisor, "vec1"), "vec1") is None


def test_codesign_loop_reproduces_paper_sequence(mesh):
    result = run_codesign_loop(mesh, RISCV_VEC, vector_size=240)
    assert result.sequence == ["vanilla", "vec2", "ivec2", "vec1"]
    # the loop ends better than it started, despite the VEC2 dip
    assert result.final_speedup > 1.05
    speedups = [s.speedup_vs_start for s in result.steps]
    assert speedups[1] < 1.0          # VEC2 is the deliberate regression
    assert speedups[3] > speedups[2] > speedups[1]


def test_findings_sorted_by_severity_then_share(mesh, advisor):
    findings = analyze(mesh, advisor, "vanilla")
    keys = [(f.severity, f.cycles_share) for f in findings]
    assert keys == sorted(keys, reverse=True)


def test_render_findings(mesh, advisor):
    text = render_findings(analyze(mesh, advisor, "vanilla"))
    assert "phase 2" in text and "->" in text
    assert render_findings([]).startswith("no findings")
