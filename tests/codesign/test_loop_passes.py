"""The closed loop applies the passes it recommends."""

import pytest

from repro.cfd.mesh import box_mesh
from repro.codesign.advisor import CATEGORY_PASS, recommend_next_pass
from repro.codesign.loop import run_codesign_loop
from repro.compiler.transforms import (
    ConstantTripCount,
    LoopFission,
    LoopInterchange,
)
from repro.machine.machines import RISCV_VEC


@pytest.fixture(scope="module")
def result():
    return run_codesign_loop(box_mesh(6, 6, 6), RISCV_VEC, vector_size=240)


def test_loop_applies_the_papers_pass_sequence(result):
    assert result.sequence == ["vanilla", "vec2", "ivec2", "vec1"]
    assert result.pass_sequence == ["const-trip-count", "loop-interchange",
                                    "loop-fission"]


def test_steps_carry_their_pass_schedules(result):
    assert [s.passes for s in result.steps] == [
        (),
        ("const-trip-count",),
        ("const-trip-count", "loop-interchange"),
        ("const-trip-count", "loop-interchange", "loop-fission")]
    assert result.steps[-1].next_pass is None
    assert result.steps[-1].next_opt is None


def test_final_state_outperforms_start(result):
    assert result.final_speedup > 1.0


def test_category_pass_mapping_covers_the_three_lessons():
    assert CATEGORY_PASS == {
        "runtime-trip-count": ConstantTripCount,
        "low-avl": LoopInterchange,
        "mixed-loop-body": LoopFission,
    }


def test_recommendation_inserts_missing_prerequisite():
    from repro.codesign.advisor import Finding, Severity

    # a low-avl finding with const-trip-count not yet applied must
    # recommend the prerequisite, not an illegal interchange.
    finding = Finding(phase=2, category="low-avl", severity=Severity.MAJOR,
                      message="", recommendation="", cycles_share=0.5)
    assert recommend_next_pass([finding], ()) is ConstantTripCount
    assert recommend_next_pass(
        [finding], ("const-trip-count",)) is LoopInterchange
    assert recommend_next_pass(
        [finding], ("const-trip-count", "loop-interchange")) is None
